//! Subcommand parsing and execution for the `rckt` binary.

use rckt::explain::{render_influence_table, ExplainContext};
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::preprocess::{windows, DEFAULT_MIN_LEN, DEFAULT_WINDOW_LEN};
use rckt_data::stats::DatasetStats;
use rckt_data::{csv, make_batches, Dataset, KFold, SyntheticSpec};
use rckt_models::model::TrainConfig;
use rckt_models::KtModel;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

pub const USAGE: &str = "\
usage: rckt <command> [flags]

commands:
  generate  --preset <assist09|assist12|slepemapy|eedi> [--scale f] --out <csv>
  stats     --data <csv>
  train     --data <csv> [--backbone dkt|sakt|akt] [--epochs n] [--dim n]
            [--lr f] [--lambda f] [--seed n] [--grad-shards n]
            [--unidirectional true] --out <model.json>
  evaluate  --data <csv> --model <model.json> [--stride n]
  explain   --data <csv> --model <model.json> [--window n]
  audit     --data <csv> --model <model.json> [--groups n]
  serve     --model <model.json> [--port p] [--max-batch n] [--max-queue n]
            [--workers n] [--conn-threads n] [--window n] [--cache n]
            [--sessions n] [--deadline-ms n] [--quality-log <csv>]
            [--postmortem-dir <dir>] [--slo <spec>] [--flight-bytes n]
            (--workers: batcher shards, students routed by FNV of their
            id; --conn-threads: fixed connection-handler pool, floods
            beyond its bounded accept queue are shed with a 503;
            --slo: comma-separated objectives over the flight-recorded
            endpoints, e.g. \"/predict:avail:99.9,/predict:lat250ms:99,
            min=10\"; default covers /predict and /explain)
  loadtest  [--model <model.json>] [--preset <name>] [--students n]
            [--rate req_per_s] [--duration secs] [--clients n]
            [--workers n] [--conn-threads n] [--max-batch n]
            [--max-queue n] [--window n] [--sample-out <json>]
            [--out <jsonl>]  (open-loop load generator: boots an
            in-process server and replays preset session scripts as
            append-one /predict steps from thousands of synthetic
            students; appends p50/p99, throughput, shed rate, and peak
            per-shard queue depth to results/BENCH_serve.json)
  predict   --model <model.json> --requests <json> [--mode predict|explain]
            [--window n] [--solo true]  (--solo scores each request in its
            own model call — required when byte-comparing mixed-length
            request files against per-request served responses)
  replay-session --model <model.json> --requests <json> [--window n]
            (offline twin of the serve warm path: replays the requests in
            order through the same incremental session state the server
            keeps, printing one response body per line, byte-identical to
            the served responses for the same step sequence)
  monitor   --replay <quality.csv>   (re-derive the rckt_quality_* report
            from a serve --quality-log file; byte-identical to the live
            gauges at the moment the log was written)
  postmortem <bundle.json>  (render a postmortem bundle — written by
            serve --postmortem-dir on panic, SLO alert, or POST
            /debug/snapshot — as a human incident report: SLO burn rates,
            error clusters, slowest requests, event timeline)

global flags (any command):
  --threads <n>                      rckt-tensor pool width (default: the
                                     RCKT_THREADS env var, else hardware);
                                     results are identical for any value
  --log-level off|info|debug|trace   event verbosity (default info)
  --log-json <path>                  also write events as JSON lines
  --profile                          collect counters, print summary at exit
  --profile-out <path>               write the --profile report to a file
  --trace-out <path>                 write a Chrome trace-event timeline
  --serve-metrics <port>             serve /metrics /healthz /runs on localhost";

#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

pub(crate) fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Flag map: `--key value` pairs.
pub fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let Some(name) = k.strip_prefix("--") else {
            return Err(err(format!("expected a --flag, got {k:?}")));
        };
        let v = it
            .next()
            .ok_or_else(|| err(format!("--{name} needs a value")))?;
        flags.insert(name.to_string(), v.clone());
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, CliError> {
    flags
        .get(name)
        .map(|s| s.as_str())
        .ok_or_else(|| err(format!("missing --{name}")))
}

pub(crate) fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("--{name}: bad value {v:?}"))),
    }
}

fn get_bool(flags: &HashMap<String, String>, name: &str, default: bool) -> Result<bool, CliError> {
    match flags.get(name).map(|s| s.as_str()) {
        None => Ok(default),
        Some("true") => Ok(true),
        Some("false") => Ok(false),
        Some(v) => Err(err(format!("--{name}: bad value {v:?} (true|false)"))),
    }
}

pub fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(err("no command"));
    };
    // `postmortem` takes its bundle path positionally (like a pager), so
    // it parses its own arguments.
    if cmd == "postmortem" {
        return postmortem(rest);
    }
    let flags = parse_flags(rest)?;
    // global: pool width (0 = leave the RCKT_THREADS env / hardware default)
    let threads: usize = get_num(&flags, "threads", 0)?;
    if threads > 0 {
        rckt_tensor::pool::set_threads(threads);
    }
    match cmd.as_str() {
        "generate" => generate(&flags),
        "stats" => stats(&flags),
        "train" => train(&flags),
        "evaluate" => evaluate(&flags),
        "explain" => explain(&flags),
        "audit" => audit(&flags),
        "serve" => serve(&flags),
        "loadtest" => crate::loadtest::run(&flags),
        "predict" => predict(&flags),
        "replay-session" => replay_session(&flags),
        "monitor" => monitor(&flags),
        other => Err(err(format!("unknown command {other:?}"))),
    }
}

fn load_data(flags: &HashMap<String, String>) -> Result<Dataset, CliError> {
    let path = get(flags, "data")?;
    csv::load_csv(
        Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("data"),
        Path::new(path),
    )
    .map_err(|e| err(format!("loading {path}: {e}")))
}

/// Render a dataset back to the CSV format `rckt_data::csv` reads.
pub fn dataset_to_csv(ds: &Dataset) -> String {
    let mut out = String::from("student,question,concepts,correct,timestamp\n");
    for seq in &ds.sequences {
        for it in &seq.interactions {
            let concepts: Vec<String> = ds
                .q_matrix
                .concepts_of(it.question)
                .iter()
                .map(|k| k.to_string())
                .collect();
            out.push_str(&format!(
                "{},{},\"{}\",{},{}\n",
                seq.student,
                it.question,
                concepts.join(";"),
                it.correct as u8,
                it.timestamp
            ));
        }
    }
    out
}

fn generate(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let preset = get(flags, "preset")?;
    let spec = match preset {
        "assist09" => SyntheticSpec::assist09(),
        "assist12" => SyntheticSpec::assist12(),
        "slepemapy" => SyntheticSpec::slepemapy(),
        "eedi" => SyntheticSpec::eedi(),
        other => return Err(err(format!("unknown preset {other:?}"))),
    };
    let scale: f64 = get_num(flags, "scale", 1.0)?;
    let out = get(flags, "out")?;
    let ds = spec.scaled(scale).generate();
    std::fs::write(out, dataset_to_csv(&ds)).map_err(|e| err(format!("writing {out}: {e}")))?;
    println!(
        "wrote {} ({} students, {} responses, {:.0}% correct)",
        out,
        ds.sequences.len(),
        ds.num_responses(),
        ds.correct_rate() * 100.0
    );
    Ok(())
}

fn stats(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let ds = load_data(flags)?;
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    println!("{}", DatasetStats::compute(&ds, &ws));
    Ok(())
}

fn train(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let ds = load_data(flags)?;
    let out = get(flags, "out")?;
    let backbone = match flags.get("backbone").map(|s| s.as_str()).unwrap_or("dkt") {
        "dkt" => Backbone::Dkt,
        "sakt" => Backbone::Sakt,
        "akt" => Backbone::Akt,
        other => return Err(err(format!("unknown backbone {other:?} (dkt|sakt|akt)"))),
    };
    let cfg = RcktConfig {
        dim: get_num(flags, "dim", 32)?,
        lr: get_num(flags, "lr", 2e-3)?,
        lambda: get_num(flags, "lambda", 0.1)?,
        seed: get_num(flags, "seed", 0u64)?,
        grad_shards: get_num(flags, "grad-shards", 1usize)?.max(1),
        // Forward-only encoder: slightly weaker context, but served
        // sessions qualify for the incremental warm path.
        unidirectional: get_bool(flags, "unidirectional", false)?,
        ..Default::default()
    };
    let epochs: usize = get_num(flags, "epochs", 15)?;

    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    if ws.len() < 10 {
        return Err(err(format!(
            "only {} usable windows — need at least 10",
            ws.len()
        )));
    }
    let folds = KFold::paper(cfg.seed).split(ws.len());
    let seed = cfg.seed;
    let grad_shards = cfg.grad_shards;
    let mut model = Rckt::new(backbone, ds.num_questions(), ds.num_concepts(), cfg);
    // Identity labels for the live /metrics endpoint (`rckt_run_info`).
    rckt_obs::set_run_label("bin", "rckt-train");
    rckt_obs::set_run_label("model", model.name());
    rckt_obs::set_run_label("seed", seed);
    rckt_obs::set_run_label("threads", rckt_tensor::pool::threads());
    rckt_obs::set_run_label("kernel", rckt_tensor::kernels::kernel_variant_name());
    rckt_obs::set_run_label("cpu", rckt_tensor::kernels::cpu_features());
    rckt_obs::set_run_label("grad_shards", grad_shards);
    rckt_obs::event(
        rckt_obs::Level::Info,
        "cli.train",
        &[
            ("model", model.name().into()),
            ("windows", ws.len().into()),
            ("weights", model.num_weights().into()),
        ],
    );
    let tc = TrainConfig {
        max_epochs: epochs,
        patience: (epochs / 2).max(3),
        batch_size: 16,
        verbose: true,
        ..Default::default()
    };
    // `run_fit` already reports best_val_auc/best_epoch via the "train.done" event.
    let fit_t0 = std::time::Instant::now();
    model.fit(&ws, &folds[0].train, &folds[0].val, &ds.q_matrix, &tc);
    // Publish the run's provenance to the live /runs endpoint (no file
    // write — the CLI is not a bench binary with a trajectory history).
    rckt_obs::RunManifest::capture("rckt-train", seed, None)
        .config("model", model.name())
        .config("threads", rckt_tensor::pool::threads())
        .config("kernel", rckt_tensor::kernels::kernel_variant_name())
        .config("cpu", rckt_tensor::kernels::cpu_features())
        .config("grad_shards", grad_shards)
        .result("fit_secs", fit_t0.elapsed().as_secs_f64())
        .publish();
    // Embed the Q-matrix so the file is self-contained for `rckt serve`
    // (no dataset CSV needed to answer online queries), plus the
    // validation-fold score histogram as the PSI drift reference for the
    // serving-time quality monitors.
    let reference = rckt::ScoreReference::from_scores(
        validation_scores(&model, &ws, &folds[0].val, &ds.q_matrix),
        rckt_obs::SCORE_BINS,
    );
    std::fs::write(out, model.export_full(&ds.q_matrix, Some(reference)))
        .map_err(|e| err(format!("writing {out}: {e}")))?;
    println!("saved model to {out}");
    Ok(())
}

/// Final-position prediction probability for every validation window —
/// the model's own score distribution at train time, histogrammed into
/// the serving monitors' PSI reference.
fn validation_scores(
    model: &Rckt,
    ws: &[rckt_data::Window],
    val: &[usize],
    qm: &rckt_data::QMatrix,
) -> Vec<f64> {
    let mut scores = Vec::with_capacity(val.len());
    for b in &make_batches(ws, val, qm, 16) {
        for bb in 0..b.batch {
            let last = b.seq_len(bb) - 1;
            let targets: Vec<usize> = (0..b.batch)
                .map(|x| if x == bb { last } else { 1 })
                .collect();
            scores.push(f64::from(model.predict_targets(b, &targets)[bb].prob));
        }
    }
    scores
}

fn serve_config(flags: &HashMap<String, String>) -> Result<rckt_serve::ServeConfig, CliError> {
    let defaults = rckt_serve::ServeConfig::default();
    // Validate the SLO grammar at the CLI door (start() re-parses, but a
    // typo should fail before the model file is loaded).
    if let Some(spec) = flags.get("slo") {
        rckt_obs::SloSpec::parse(spec).map_err(|e| err(format!("--slo: {e}")))?;
    }
    Ok(rckt_serve::ServeConfig {
        port: get_num(flags, "port", defaults.port)?,
        max_batch: get_num(flags, "max-batch", defaults.max_batch)?,
        max_queue: get_num(flags, "max-queue", defaults.max_queue)?,
        workers: get_num(flags, "workers", defaults.workers)?,
        conn_threads: get_num(flags, "conn-threads", defaults.conn_threads)?,
        window: get_num(flags, "window", defaults.window)?,
        cache_capacity: get_num(flags, "cache", defaults.cache_capacity)?,
        session_capacity: get_num(flags, "sessions", defaults.session_capacity)?,
        deadline_ms: get_num(flags, "deadline-ms", defaults.deadline_ms)?,
        quality_log: flags.get("quality-log").cloned(),
        postmortem_dir: flags.get("postmortem-dir").cloned(),
        slo: flags.get("slo").cloned(),
        flight_bytes: get_num(flags, "flight-bytes", defaults.flight_bytes)?,
        // Hidden test hook: never a flag, only the env var, so it cannot
        // be reached from a normal command line.
        test_panic: std::env::var("RCKT_SERVE_TEST_PANIC").is_ok_and(|v| v == "1"),
    })
}

/// Offline twin of a live incident view: render a postmortem bundle as a
/// human report via [`rckt_serve::render_report`] — the same function the
/// serve crate's tests round-trip live bundles through.
fn postmortem(args: &[String]) -> Result<(), CliError> {
    let path = match args.first() {
        Some(p) if !p.starts_with("--") && args.len() == 1 => p.clone(),
        _ => {
            let flags = parse_flags(args)?;
            get(&flags, "bundle")?.to_string()
        }
    };
    let text = std::fs::read_to_string(&path).map_err(|e| err(format!("reading {path}: {e}")))?;
    let report = rckt_serve::render_report(&text).map_err(|e| err(format!("{path}: {e}")))?;
    print!("{report}");
    Ok(())
}

fn serve(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let model_path = get(flags, "model")?;
    let cfg = serve_config(flags)?;
    let engine = std::sync::Arc::new(rckt_serve::Engine::from_file(model_path, &cfg).map_err(err)?);
    rckt_obs::set_run_label("bin", "rckt-serve");
    rckt_obs::set_run_label("model_hash", format!("{:016x}", engine.model_hash));
    let server = rckt_serve::start(engine, &cfg)
        .map_err(|e| err(format!("cannot bind 127.0.0.1:{}: {e}", cfg.port)))?;
    // The same discovery event the telemetry server emits, so scripts can
    // poll a --log-json file for the bound port (port 0 = OS picks).
    rckt_obs::event(
        rckt_obs::Level::Info,
        "serve.listening",
        &[("port", u64::from(server.port()).into())],
    );
    println!(
        "serving on 127.0.0.1:{} — POST /predict /explain /feedback /debug/snapshot /shutdown, \
         GET /healthz /metrics /debug/flight /debug/slo",
        server.port()
    );
    server.wait();
    println!("drained and stopped");
    Ok(())
}

fn predict(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let model_path = get(flags, "model")?;
    let cfg = rckt_serve::ServeConfig {
        window: get_num(flags, "window", rckt_serve::DEFAULT_SERVE_WINDOW)?,
        cache_capacity: 0,
        ..Default::default()
    };
    let engine = rckt_serve::Engine::from_file(model_path, &cfg).map_err(err)?;
    let req_path = get(flags, "requests")?;
    let text =
        std::fs::read_to_string(req_path).map_err(|e| err(format!("reading {req_path}: {e}")))?;
    // Output is serialized from the same structs the server responds
    // with, so `rckt predict` stdout is byte-comparable to a served
    // response body over the same requests (CI asserts exactly that).
    match flags.get("mode").map(|s| s.as_str()).unwrap_or("predict") {
        "predict" => {
            let body: rckt_serve::PredictBody =
                serde_json::from_str(&text).map_err(|e| err(format!("parsing {req_path}: {e}")))?;
            // --solo scores each request in its own model call. Fused
            // batches of *mixed* history lengths are not guaranteed
            // bit-identical to solo runs (the encoder's validity-gate
            // arithmetic differs when a batch mixes lengths), so solo
            // evaluation is the right oracle when byte-comparing against
            // per-request served responses — e.g. a replayed live session
            // of growing histories.
            let resp = if get_bool(flags, "solo", false)? {
                let mut predictions = Vec::with_capacity(body.requests.len());
                for r in &body.requests {
                    let one = rckt_serve::api::predict_batch(
                        &engine.model,
                        &engine.qm,
                        std::slice::from_ref(r),
                        cfg.window,
                    )
                    .map_err(|e| err(e.to_string()))?;
                    predictions.extend(one.predictions);
                }
                rckt_serve::PredictResponse { predictions }
            } else {
                rckt_serve::api::predict_batch(
                    &engine.model,
                    &engine.qm,
                    &body.requests,
                    cfg.window,
                )
                .map_err(|e| err(e.to_string()))?
            };
            println!(
                "{}",
                serde_json::to_string(&resp).expect("response serialization")
            );
        }
        "explain" => {
            let body: rckt_serve::ExplainBody =
                serde_json::from_str(&text).map_err(|e| err(format!("parsing {req_path}: {e}")))?;
            let resp = rckt_serve::api::explain_batch(
                &engine.model,
                &engine.qm,
                &body.requests,
                cfg.window,
            )
            .map_err(|e| err(e.to_string()))?;
            println!(
                "{}",
                serde_json::to_string(&resp).expect("response serialization")
            );
        }
        other => return Err(err(format!("unknown --mode {other:?} (predict|explain)"))),
    }
    Ok(())
}

/// Offline twin of the serve warm path: replay a request file in order
/// through the same [`rckt_serve::warm::predict_one`] the batcher calls,
/// against a local session store, printing one `PredictResponse` body per
/// request line. For an append-one step sequence this reproduces the
/// served warm-path bytes by construction (same function, same state
/// evolution); for models without a forward-only encoder it falls back to
/// the exact solo path — which is what the server does too.
fn replay_session(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let model_path = get(flags, "model")?;
    let cfg = rckt_serve::ServeConfig {
        window: get_num(flags, "window", rckt_serve::DEFAULT_SERVE_WINDOW)?,
        cache_capacity: 0,
        ..Default::default()
    };
    let engine = rckt_serve::Engine::from_file(model_path, &cfg).map_err(err)?;
    let req_path = get(flags, "requests")?;
    let text =
        std::fs::read_to_string(req_path).map_err(|e| err(format!("reading {req_path}: {e}")))?;
    let body: rckt_serve::PredictBody =
        serde_json::from_str(&text).map_err(|e| err(format!("parsing {req_path}: {e}")))?;
    let sessions = rckt_serve::SessionStore::new(get_num(flags, "sessions", 1024usize)?);
    let warm = engine.model.supports_incremental() && sessions.capacity() > 0;
    for (i, r) in body.requests.iter().enumerate() {
        let item = if warm {
            rckt_serve::warm::predict_one(&engine, &sessions, r)
                .map_err(|e| err(format!("request {i}: {e}")))?
                .0
        } else {
            rckt_serve::api::predict_batch(
                &engine.model,
                &engine.qm,
                std::slice::from_ref(r),
                cfg.window,
            )
            .map_err(|e| err(format!("request {i}: {e}")))?
            .predictions
            .remove(0)
        };
        let resp = rckt_serve::PredictResponse {
            predictions: vec![item],
        };
        println!(
            "{}",
            serde_json::to_string(&resp).expect("response serialization")
        );
    }
    Ok(())
}

/// Replay a `rckt serve --quality-log` file through a fresh
/// [`rckt_obs::QualityMonitor`] and render the resulting quality report —
/// byte-identical to the `rckt_quality_*` gauges the live server exported
/// at the moment the log ended, because the log records events in
/// ingestion order and the renderer is shared. Returns the report and the
/// count of skipped (unparseable) lines.
pub fn replay_quality_log(text: &str) -> (String, usize) {
    let mut mon = rckt_obs::QualityMonitor::new(rckt_obs::MonitorConfig::default());
    let mut skipped = 0usize;
    for line in text.lines() {
        if let Some(counts) = rckt_obs::monitor::decode_reference(line) {
            mon.set_reference(&counts);
        } else if let Some(ev) = rckt_obs::QualityEvent::decode(line) {
            mon.ingest(&ev);
        } else if !line.trim().is_empty() && !line.starts_with('#') {
            skipped += 1;
        }
    }
    (mon.render_report(), skipped)
}

fn monitor(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let path = get(flags, "replay")?;
    let text = std::fs::read_to_string(path).map_err(|e| err(format!("reading {path}: {e}")))?;
    let (report, skipped) = replay_quality_log(&text);
    // stdout carries ONLY the report so it can be diffed against a
    // `grep '^rckt_quality_' /metrics` scrape; diagnostics go to stderr.
    print!("{report}");
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} unparseable line(s) in {path}");
    }
    if report.is_empty() {
        eprintln!("note: no quality gauges yet (log has no monitored events)");
    }
    Ok(())
}

fn load_model(flags: &HashMap<String, String>) -> Result<Rckt, CliError> {
    let path = get(flags, "model")?;
    let json = std::fs::read_to_string(path).map_err(|e| err(format!("reading {path}: {e}")))?;
    Rckt::import(&json).map_err(|e| err(format!("loading {path}: {e}")))
}

fn evaluate(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let ds = load_data(flags)?;
    let model = load_model(flags)?;
    let stride: usize = get_num(flags, "stride", 8)?;
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let idx: Vec<usize> = (0..ws.len()).collect();
    let batches = make_batches(&ws, &idx, &ds.q_matrix, 16);
    let (auc, acc) = model.evaluate_stride(&batches, stride);
    println!(
        "{} on {} windows: AUC {:.4}  ACC {:.4}",
        model.name(),
        ws.len(),
        auc,
        acc
    );
    Ok(())
}

fn explain(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let ds = load_data(flags)?;
    let model = load_model(flags)?;
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let wi: usize = get_num(flags, "window", 0)?;
    let w = ws
        .get(wi)
        .ok_or_else(|| err(format!("--window {wi} out of {} windows", ws.len())))?;
    let batch = rckt_data::Batch::from_windows(&[w], &ds.q_matrix);
    let target = batch.seq_len(0) - 1;
    let rec = &model.influences(&batch, &[target])[0];
    let ctx = ExplainContext {
        question_labels: (0..w.len)
            .map(|t| format!("question {}", w.questions[t]))
            .collect(),
    };
    println!(
        "window {wi} (student {}, {} responses), explaining response {}:",
        w.student,
        w.len,
        target + 1
    );
    print!("{}", render_influence_table(rec, &ctx));
    Ok(())
}

fn audit(flags: &HashMap<String, String>) -> Result<(), CliError> {
    let ds = load_data(flags)?;
    let model = load_model(flags)?;
    let groups: usize = get_num(flags, "groups", 4)?;
    let ws = windows(&ds, DEFAULT_WINDOW_LEN, DEFAULT_MIN_LEN);
    let idx: Vec<usize> = (0..ws.len()).collect();
    let batches = make_batches(&ws, &idx, &ds.q_matrix, 8);
    let mut per_student = Vec::new();
    for b in &batches {
        // one prediction set per sequence: its final response plus strided
        // earlier targets
        for bb in 0..b.batch {
            let len = b.seq_len(bb);
            let mut preds = Vec::new();
            let mut t = 7;
            while t < len {
                let targets: Vec<usize> =
                    (0..b.batch).map(|x| if x == bb { t } else { 1 }).collect();
                preds.push(model.predict_targets(b, &targets)[bb]);
                t += 8;
            }
            if len >= 2 {
                let targets: Vec<usize> = (0..b.batch)
                    .map(|x| if x == bb { len - 1 } else { 1 })
                    .collect();
                preds.push(model.predict_targets(b, &targets)[bb]);
            }
            if !preds.is_empty() {
                per_student.push(preds);
            }
        }
    }
    let reports = rckt::audit::audit_by_ability(&per_student, groups);
    println!(
        "{:>14}{:>6}{:>8}{:>8}{:>12}",
        "correct-rate", "n", "AUC", "ACC", "calib gap"
    );
    for r in &reports {
        if r.n == 0 {
            continue;
        }
        println!(
            "{:>6.2}-{:<6.2}{:>6}{:>8.3}{:>8.3}{:>+12.3}",
            r.rate_lo, r.rate_hi, r.n, r.auc, r.acc, r.calibration_gap
        );
    }
    println!("AUC disparity: {:.3}", rckt::audit::auc_disparity(&reports));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_flags_pairs() {
        let f = parse_flags(&args("--a 1 --b two")).unwrap();
        assert_eq!(f["a"], "1");
        assert_eq!(f["b"], "two");
        assert!(parse_flags(&args("--a")).is_err());
        assert!(parse_flags(&args("nope 1")).is_err());
    }

    #[test]
    fn bool_flags_require_true_or_false() {
        let f = parse_flags(&args("--solo true --unidirectional false")).unwrap();
        assert!(get_bool(&f, "solo", false).unwrap());
        assert!(!get_bool(&f, "unidirectional", true).unwrap());
        assert!(get_bool(&f, "absent", true).unwrap());
        let f = parse_flags(&args("--solo yes")).unwrap();
        assert!(get_bool(&f, "solo", false).is_err());
    }

    #[test]
    fn replay_session_and_solo_predict_run_on_a_forward_only_model() {
        let dir = std::env::temp_dir().join("rckt_cli_replay");
        std::fs::create_dir_all(&dir).unwrap();
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                unidirectional: true,
                ..Default::default()
            },
        );
        let model_path = dir.join("uni_model.json");
        std::fs::write(&model_path, model.export_with_qmatrix(&ds.q_matrix)).unwrap();
        // An append-one session: each request's history is the previous
        // one plus the answer to its target.
        let mut requests = Vec::new();
        let hist: Vec<(u32, bool)> = (0..6).map(|i| ((i as u32 % 5) + 1, i % 3 != 0)).collect();
        for n in 0..hist.len() {
            let history: Vec<serde_json::Value> = hist[..n]
                .iter()
                .map(|&(q, c)| serde_json::json!({"question": q, "correct": c}))
                .collect();
            requests.push(serde_json::json!({
                "student": 7, "history": history, "target_question": hist[n].0,
            }));
        }
        let req_path = dir.join("session.json");
        std::fs::write(
            &req_path,
            serde_json::json!({ "requests": requests }).to_string(),
        )
        .unwrap();
        dispatch(&args(&format!(
            "replay-session --model {} --requests {} --window 16",
            model_path.display(),
            req_path.display()
        )))
        .unwrap();
        dispatch(&args(&format!(
            "predict --model {} --requests {} --window 16 --solo true",
            model_path.display(),
            req_path.display()
        )))
        .unwrap();
        let e = dispatch(&args(&format!(
            "replay-session --model {} --requests /nonexistent/r.json",
            model_path.display()
        )))
        .unwrap_err();
        assert!(e.0.contains("reading"), "{e}");
    }

    #[test]
    fn loadtest_smoke_appends_results_and_samples_a_session() {
        let dir = std::env::temp_dir().join("rckt_cli_loadtest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench.jsonl");
        let sample = dir.join("sample.json");
        dispatch(&args(&format!(
            "loadtest --students 12 --scale 0.05 --rate 300 --duration 0.3 \
             --clients 4 --workers 2 --window 16 --out {} --sample-out {}",
            out.display(),
            sample.display()
        )))
        .unwrap();
        // A result row landed with the loadtest metric set.
        let row = std::fs::read_to_string(&out).unwrap();
        for key in [
            "\"p99_ms\"",
            "\"throughput_rps\"",
            "\"shed_rate\"",
            "\"hung\"",
            "\"max_shard_depth\"",
        ] {
            assert!(row.contains(key), "missing {key} in {row}");
        }
        // The sampled session is a predict-compatible request file with
        // one served response body per scheduled step.
        let body: rckt_serve::PredictBody =
            serde_json::from_str(&std::fs::read_to_string(&sample).unwrap()).unwrap();
        assert!(!body.requests.is_empty());
        let responses = std::fs::read_to_string(format!("{}.responses", sample.display())).unwrap();
        assert_eq!(responses.trim().lines().count(), body.requests.len());
        for line in responses.trim().lines() {
            let r: rckt_serve::PredictResponse = serde_json::from_str(line).unwrap();
            assert_eq!(r.predictions.len(), 1);
        }

        let e = dispatch(&args("loadtest --rate 0")).unwrap_err();
        assert!(e.0.contains("positive"), "{e}");
        let e = dispatch(&args("loadtest --preset mars")).unwrap_err();
        assert!(e.0.contains("unknown preset"), "{e}");
    }

    #[test]
    fn unknown_command_is_error() {
        assert!(dispatch(&args("frobnicate --x 1")).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn postmortem_renders_bundles_and_rejects_non_bundles() {
        let dir = std::env::temp_dir().join("rckt_cli_postmortem");
        std::fs::create_dir_all(&dir).unwrap();
        // A minimal but structurally complete bundle: the renderer must
        // cope with empty rings and no objectives.
        let bundle = dir.join("bundle.json");
        std::fs::write(
            &bundle,
            "{\"bundle\":\"rckt-postmortem/v1\",\"reason\":\"snapshot\",\"ts\":12.5,\
             \"flight\":{\"events\":[],\"requests\":[]},\"slo\":{\"objectives\":[]}}",
        )
        .unwrap();
        // Positional and --bundle spellings both work.
        dispatch(&args(&format!("postmortem {}", bundle.display()))).unwrap();
        dispatch(&args(&format!("postmortem --bundle {}", bundle.display()))).unwrap();

        let e = dispatch(&args("postmortem /nonexistent/bundle.json")).unwrap_err();
        assert!(e.0.contains("reading"), "{e}");
        let not_bundle = dir.join("other.json");
        std::fs::write(&not_bundle, "{\"hello\":1}").unwrap();
        let e = dispatch(&args(&format!("postmortem {}", not_bundle.display()))).unwrap_err();
        assert!(e.0.contains("not a postmortem bundle"), "{e}");
        let e = dispatch(&args("postmortem")).unwrap_err();
        assert!(e.0.contains("bundle"), "{e}");
    }

    #[test]
    fn generate_requires_known_preset() {
        let e = dispatch(&args("generate --preset mars --out /tmp/x.csv")).unwrap_err();
        assert!(e.0.contains("unknown preset"));
    }

    #[test]
    fn dataset_csv_roundtrip() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let csv_text = dataset_to_csv(&ds);
        let back = csv::parse_csv("t", &csv_text).unwrap();
        assert_eq!(back.num_responses(), ds.num_responses());
        assert_eq!(back.sequences.len(), ds.sequences.len());
    }

    #[test]
    fn generate_then_stats_and_train_pipeline() {
        let dir = std::env::temp_dir().join("rckt_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("data.csv");
        let model = dir.join("model.json");
        dispatch(&args(&format!(
            "generate --preset assist09 --scale 0.05 --out {}",
            data.display()
        )))
        .unwrap();
        dispatch(&args(&format!("stats --data {}", data.display()))).unwrap();
        dispatch(&args(&format!(
            "train --data {} --backbone dkt --epochs 2 --dim 8 --out {}",
            data.display(),
            model.display()
        )))
        .unwrap();
        dispatch(&args(&format!(
            "evaluate --data {} --model {}",
            data.display(),
            model.display()
        )))
        .unwrap();
        dispatch(&args(&format!(
            "explain --data {} --model {} --window 0",
            data.display(),
            model.display()
        )))
        .unwrap();
        dispatch(&args(&format!(
            "audit --data {} --model {} --groups 3",
            data.display(),
            model.display()
        )))
        .unwrap();
        // Trained models now embed the Q-matrix so `rckt serve` can build
        // batches from the model file alone.
        let saved = rckt::SavedModel::parse(&std::fs::read_to_string(&model).unwrap()).unwrap();
        assert!(saved.q_matrix.is_some(), "train must embed the Q-matrix");
        // Trained models also embed the validation-fold score histogram
        // as the serving monitors' PSI drift reference.
        let reference = saved
            .score_reference
            .as_ref()
            .expect("train must embed a score_reference");
        assert_eq!(reference.counts.len(), rckt_obs::SCORE_BINS);
        assert!(reference.counts.iter().sum::<u64>() > 0);
        // And the offline predict path answers from that file.
        let reqs = dir.join("requests.json");
        std::fs::write(
            &reqs,
            "{\"requests\":[{\"student\":0,\"history\":[],\"target_question\":1}]}",
        )
        .unwrap();
        dispatch(&args(&format!(
            "predict --model {} --requests {}",
            model.display(),
            reqs.display()
        )))
        .unwrap();
    }

    #[test]
    fn monitor_replay_matches_a_directly_fed_monitor() {
        // A log with a reference histogram and enough feedback to arm
        // every monitor family.
        let mut log = String::from("reference,5,0,0,0,0,0,0,0,0,5\n");
        for i in 0..30 {
            let score = f64::from(i) / 30.0;
            log.push_str(&format!("predict,{score}\n"));
            log.push_str(&format!("feedback,{score},{}\n", u8::from(score > 0.5)));
        }
        log.push_str("explain,0.5,0.25,0.9,0.1\n");
        log.push_str("# comment\n\nnot,a,real,line\n");

        let (report, skipped) = replay_quality_log(&log);
        assert_eq!(skipped, 1, "only the junk line is skipped");
        for name in [
            "rckt_quality_auc ",
            "rckt_quality_ece ",
            "rckt_quality_score_psi ",
            "rckt_quality_score_p50 ",
            "rckt_quality_influence_entropy ",
        ] {
            assert!(report.contains(name), "missing {name} in:\n{report}");
        }

        // Replaying the same log again is deterministic.
        assert_eq!(replay_quality_log(&log).0, report);

        // And the CLI command prints it without error.
        let dir = std::env::temp_dir().join("rckt_cli_monitor");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quality.csv");
        std::fs::write(&path, &log).unwrap();
        dispatch(&args(&format!("monitor --replay {}", path.display()))).unwrap();

        let e = dispatch(&args("monitor --replay /nonexistent/q.csv")).unwrap_err();
        assert!(e.0.contains("reading"), "{e}");
    }

    #[test]
    fn missing_files_are_contextual_errors_not_panics() {
        let e = dispatch(&args(
            "predict --model /nonexistent/m.json --requests /nonexistent/r.json",
        ))
        .unwrap_err();
        assert!(e.0.contains("cannot read model file"), "{e}");
        let e = dispatch(&args(
            "evaluate --data /nonexistent/d.csv --model /nonexistent/m.json",
        ))
        .unwrap_err();
        assert!(e.0.contains("/nonexistent/d.csv"), "{e}");
        let e = dispatch(&args("serve --model /nonexistent/m.json")).unwrap_err();
        assert!(e.0.contains("cannot read model file"), "{e}");
    }

    #[test]
    fn malformed_json_is_a_contextual_error_not_a_panic() {
        let dir = std::env::temp_dir().join("rckt_cli_badfiles");
        std::fs::create_dir_all(&dir).unwrap();
        let bad_model = dir.join("bad_model.json");
        std::fs::write(&bad_model, "{\"version\": 1, \"truncated").unwrap();
        let e = dispatch(&args(&format!(
            "predict --model {} --requests /nonexistent/r.json",
            bad_model.display()
        )))
        .unwrap_err();
        assert!(e.0.contains("parse error"), "{e}");

        // A valid model but malformed requests file.
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let good_model = dir.join("good_model.json");
        std::fs::write(&good_model, model.export_with_qmatrix(&ds.q_matrix)).unwrap();
        let bad_reqs = dir.join("bad_reqs.json");
        std::fs::write(&bad_reqs, "[not a body]").unwrap();
        let e = dispatch(&args(&format!(
            "predict --model {} --requests {}",
            good_model.display(),
            bad_reqs.display()
        )))
        .unwrap_err();
        assert!(e.0.contains("parsing"), "{e}");

        // Out-of-range ids in the requests surface as a typed error.
        let oor = dir.join("oor.json");
        std::fs::write(
            &oor,
            "{\"requests\":[{\"history\":[],\"target_question\":99999999}]}",
        )
        .unwrap();
        let e = dispatch(&args(&format!(
            "predict --model {} --requests {}",
            good_model.display(),
            oor.display()
        )))
        .unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");

        let e = dispatch(&args(&format!(
            "predict --model {} --requests {} --mode frobnicate",
            good_model.display(),
            bad_reqs.display()
        )))
        .unwrap_err();
        assert!(e.0.contains("unknown --mode"), "{e}");
    }
}
