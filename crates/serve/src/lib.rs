//! # rckt-serve
//!
//! Batched online inference for a trained RCKT model: a std-only HTTP
//! service exposing `POST /predict` and `POST /explain` over a
//! [`SavedModel`](rckt::SavedModel) file, with
//!
//! * **micro-batching** — concurrent requests are fused into single
//!   `predict_targets` / `influences_exact` calls by a worker thread
//!   ([`batcher`]); fixed-length window padding plus row-independent eval
//!   kernels make the fused results bit-identical to solo runs;
//! * **per-student session caching** — an LRU memo keyed on
//!   (model hash, request) answers repeated history prefixes without
//!   touching the model ([`cache`]);
//! * **load-shedding** — a bounded queue answers 503 + `Retry-After`
//!   when full, per-request deadlines answer 504 when exceeded, and
//!   `POST /shutdown` drains gracefully;
//! * **observability** — request/queue latency histograms, queue-depth
//!   and cache hit-rate gauges, and per-endpoint counters land in the
//!   `rckt-obs` registry and are scrapable at `GET /metrics`.
//!
//! The offline entry points ([`api::predict_batch`],
//! [`api::explain_batch`]) are the same code the worker runs, so
//! `rckt predict` output is byte-comparable to served responses — CI
//! asserts exactly that.

pub mod api;
pub mod batcher;
pub mod cache;
pub mod http;

pub use api::{
    ApiError, ExplainBody, ExplainRequest, ExplainResponse, ExplainResponseItem, HistoryItem,
    PredictBody, PredictRequest, PredictResponse, PredictResponseItem, DEFAULT_SERVE_WINDOW,
};
pub use batcher::{cache_key, Batcher, Engine, Job, JobRequest};
pub use cache::{Outcome, SessionCache};

use rckt::{Rckt, SavedModel};
use rckt_obs::{counter, histogram};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Serving knobs; every field has a CLI flag (`rckt serve --help`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Port to bind on loopback; 0 lets the OS pick.
    pub port: u16,
    /// Largest number of requests fused into one model call.
    pub max_batch: usize,
    /// Queue capacity; submissions beyond it are shed with a 503.
    pub max_queue: usize,
    /// Fixed pad length for served windows (bounds history length).
    /// Must match the offline run being compared against.
    pub window: usize,
    /// Session-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Default per-request deadline in ms (0 = none); bodies can
    /// override via `deadline_ms`.
    pub deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            max_batch: 8,
            max_queue: 64,
            window: DEFAULT_SERVE_WINDOW,
            cache_capacity: 4096,
            deadline_ms: 0,
        }
    }
}

/// FNV-1a 64-bit — hashes the model file so cache keys from a previous
/// model can never answer for a new one.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Engine {
    /// Build a serving engine from exported model JSON. The file must
    /// carry an embedded Q-matrix (`rckt train` writes one); without it
    /// there is no question→concept mapping to build batches from.
    pub fn from_json(json: &str, cfg: &ServeConfig) -> Result<Engine, String> {
        let saved = SavedModel::parse(json).map_err(|e| e.to_string())?;
        let qm = saved.q_matrix.clone().ok_or_else(|| {
            "model file has no embedded q_matrix; re-export it with `rckt train` \
             (which embeds the dataset's question→concept mapping)"
                .to_string()
        })?;
        if cfg.window == 0 {
            return Err("serve window must be at least 1".to_string());
        }
        if cfg.window > saved.config.max_len {
            return Err(format!(
                "serve window {} exceeds the model's trained max_len {}",
                cfg.window, saved.config.max_len
            ));
        }
        let model = Rckt::from_saved(&saved).map_err(|e| e.to_string())?;
        Ok(Engine {
            model,
            qm,
            window: cfg.window,
            cache: SessionCache::new(cfg.cache_capacity),
            model_hash: fnv1a(json.as_bytes()),
        })
    }

    /// [`Engine::from_json`] over a file path.
    pub fn from_file(path: &str, cfg: &ServeConfig) -> Result<Engine, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read model file {path}: {e}"))?;
        Engine::from_json(&json, cfg)
    }
}

struct Ctx {
    engine: Arc<Engine>,
    batcher: Arc<Batcher>,
    stop: Arc<AtomicBool>,
    started_at: Instant,
    default_deadline_ms: u64,
    port: u16,
}

/// A running inference server; [`ServeServer::wait`] blocks until
/// `POST /shutdown` (or [`ServeServer::stop`]) and then drains the queue.
pub struct ServeServer {
    port: u16,
    stop: Arc<AtomicBool>,
    batcher: Arc<Batcher>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ServeServer {
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Block until the accept loop exits, then drain the batcher so every
    /// accepted request is answered before returning.
    pub fn wait(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.batcher.drain_and_stop();
    }

    /// Stop from the owning thread: close the accept loop and drain.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.batcher.drain_and_stop();
    }
}

impl Drop for ServeServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

/// Bind `127.0.0.1:<cfg.port>` and serve until stopped.
pub fn start(engine: Arc<Engine>, cfg: &ServeConfig) -> std::io::Result<ServeServer> {
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let port = listener.local_addr()?.port();
    let stop = Arc::new(AtomicBool::new(false));
    let batcher = Arc::new(Batcher::start(
        Arc::clone(&engine),
        cfg.max_batch,
        cfg.max_queue,
    ));
    let ctx = Arc::new(Ctx {
        engine,
        batcher: Arc::clone(&batcher),
        stop: Arc::clone(&stop),
        started_at: Instant::now(),
        default_deadline_ms: cfg.deadline_ms,
        port,
    });
    let accept_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("rckt-serve-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let ctx = Arc::clone(&ctx);
                    let _ = std::thread::Builder::new()
                        .name("rckt-serve-conn".to_string())
                        .spawn(move || handle_connection(&ctx, stream));
                }
            }
        })?;
    Ok(ServeServer {
        port,
        stop,
        batcher,
        handle: Some(handle),
    })
}

const JSON: &str = "application/json";
const RETRY: &[(&str, &str)] = &[("Retry-After", "1")];

fn respond_api_error(stream: &mut TcpStream, e: &ApiError) {
    let (status, extra): (&str, &[(&str, &str)]) = match e {
        ApiError::BadRequest(_) => ("400 Bad Request", &[]),
        ApiError::Overloaded | ApiError::Draining => ("503 Service Unavailable", RETRY),
        ApiError::DeadlineExceeded => ("504 Gateway Timeout", &[]),
        ApiError::Internal(_) => ("500 Internal Server Error", &[]),
    };
    http::respond(
        stream,
        status,
        JSON,
        extra,
        &http::error_body(&e.to_string()),
    );
}

fn deadline_from(body_ms: Option<u64>, default_ms: u64) -> Option<Instant> {
    match body_ms.unwrap_or(default_ms) {
        0 => None,
        ms => Some(Instant::now() + Duration::from_millis(ms)),
    }
}

/// Enqueue one validated request set and collect outcomes in body order.
fn run_jobs(
    ctx: &Ctx,
    reqs: Vec<JobRequest>,
    deadline: Option<Instant>,
) -> Result<Vec<Outcome>, ApiError> {
    let (tx, rx) = mpsc::channel();
    let n = reqs.len();
    for (index, req) in reqs.into_iter().enumerate() {
        ctx.batcher.submit(Job {
            key: cache_key(ctx.engine.model_hash, &req),
            req,
            index,
            enqueued: Instant::now(),
            deadline,
            reply: tx.clone(),
        })?;
    }
    drop(tx);
    let mut out: Vec<Option<Outcome>> = vec![None; n];
    for _ in 0..n {
        let (index, result) = rx
            .recv()
            .map_err(|_| ApiError::Internal("batch worker exited".to_string()))?;
        out[index] = Some(result?);
    }
    Ok(out.into_iter().map(Option::unwrap).collect())
}

fn handle_predict(ctx: &Ctx, body: &[u8], stream: &mut TcpStream) {
    let started = Instant::now();
    counter("serve.predict.requests").incr();
    let parsed: PredictBody = match serde_json::from_slice(body) {
        Ok(b) => b,
        Err(e) => {
            http::respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("invalid /predict body: {e}")),
            );
            return;
        }
    };
    // Validate the whole body at the door: one bad element fails the
    // request with a 400 before anything is queued.
    for (i, r) in parsed.requests.iter().enumerate() {
        if let Err(e) = api::predict_window(r, &ctx.engine.model, &ctx.engine.qm, ctx.engine.window)
        {
            http::respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("request {i}: {e}")),
            );
            return;
        }
    }
    let deadline = deadline_from(parsed.deadline_ms, ctx.default_deadline_ms);
    let jobs = parsed
        .requests
        .into_iter()
        .map(JobRequest::Predict)
        .collect();
    match run_jobs(ctx, jobs, deadline) {
        Ok(outcomes) => {
            let resp = PredictResponse {
                predictions: outcomes
                    .into_iter()
                    .map(|o| match o {
                        Outcome::Predict(p) => p,
                        Outcome::Explain(_) => unreachable!("predict key yields predict outcome"),
                    })
                    .collect(),
            };
            histogram("serve.request.seconds").observe(started.elapsed().as_secs_f64());
            http::respond(
                stream,
                "200 OK",
                JSON,
                &[],
                &serde_json::to_string(&resp).unwrap(),
            );
        }
        Err(e) => respond_api_error(stream, &e),
    }
}

fn handle_explain(ctx: &Ctx, body: &[u8], stream: &mut TcpStream) {
    let started = Instant::now();
    counter("serve.explain.requests").incr();
    let parsed: ExplainBody = match serde_json::from_slice(body) {
        Ok(b) => b,
        Err(e) => {
            http::respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("invalid /explain body: {e}")),
            );
            return;
        }
    };
    for (i, r) in parsed.requests.iter().enumerate() {
        if let Err(e) = api::explain_window(r, &ctx.engine.model, &ctx.engine.qm, ctx.engine.window)
        {
            http::respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("request {i}: {e}")),
            );
            return;
        }
    }
    let deadline = deadline_from(parsed.deadline_ms, ctx.default_deadline_ms);
    let jobs = parsed
        .requests
        .into_iter()
        .map(JobRequest::Explain)
        .collect();
    match run_jobs(ctx, jobs, deadline) {
        Ok(outcomes) => {
            let resp = ExplainResponse {
                explanations: outcomes
                    .into_iter()
                    .map(|o| match o {
                        Outcome::Explain(e) => e,
                        Outcome::Predict(_) => unreachable!("explain key yields explain outcome"),
                    })
                    .collect(),
            };
            histogram("serve.request.seconds").observe(started.elapsed().as_secs_f64());
            http::respond(
                stream,
                "200 OK",
                JSON,
                &[],
                &serde_json::to_string(&resp).unwrap(),
            );
        }
        Err(e) => respond_api_error(stream, &e),
    }
}

fn handle_connection(ctx: &Ctx, mut stream: TcpStream) {
    let req = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            http::respond(
                &mut stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&e.to_string()),
            );
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/predict") => handle_predict(ctx, &req.body, &mut stream),
        ("POST", "/explain") => handle_explain(ctx, &req.body, &mut stream),
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"model_hash\":\"{:016x}\",\"draining\":{},\"window\":{},\"uptime_secs\":{:.3}}}",
                ctx.engine.model_hash,
                ctx.batcher.is_draining(),
                ctx.engine.window,
                ctx.started_at.elapsed().as_secs_f64(),
            );
            http::respond(&mut stream, "200 OK", JSON, &[], &body);
        }
        ("GET", "/metrics") => {
            http::respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &[],
                &rckt_obs::prometheus::render(),
            );
        }
        ("POST", "/shutdown") => {
            // Reject new work immediately; already-queued jobs are still
            // answered (the accept loop exits, then wait()/stop() drains).
            ctx.batcher.begin_drain();
            ctx.stop.store(true, Ordering::SeqCst);
            http::respond(
                &mut stream,
                "200 OK",
                JSON,
                &[],
                "{\"status\":\"draining\"}",
            );
            // Unblock accept() so the loop observes the stop flag.
            let _ = TcpStream::connect(("127.0.0.1", ctx.port));
        }
        ("GET" | "POST", _) => {
            http::respond(
                &mut stream,
                "404 Not Found",
                JSON,
                &[],
                &http::error_body("not found; try /predict /explain /healthz /metrics /shutdown"),
            );
        }
        _ => {
            http::respond(
                &mut stream,
                "405 Method Not Allowed",
                JSON,
                &[],
                &http::error_body("method not allowed"),
            );
        }
    }
}

/// Send one request to a running server and return `(status_line, body)`.
/// Shared by the integration tests and the latency benchmark.
pub fn http_request(
    port: u16,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(String, String)> {
    let mut s = TcpStream::connect(("127.0.0.1", port))?;
    s.set_read_timeout(Some(Duration::from_secs(60)))?;
    s.set_write_timeout(Some(Duration::from_secs(60)))?;
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    use std::io::Read as _;
    let _ = s.read_to_string(&mut raw);
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = match raw.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt::{Backbone, RcktConfig};
    use rckt_data::SyntheticSpec;
    use std::io::Read as _;

    fn model_json() -> String {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        model.export_with_qmatrix(&ds.q_matrix)
    }

    fn serve_cfg() -> ServeConfig {
        ServeConfig {
            window: 16,
            ..Default::default()
        }
    }

    fn predict_body() -> String {
        serde_json::to_string(&PredictBody {
            requests: vec![
                PredictRequest {
                    student: 0,
                    history: vec![
                        HistoryItem {
                            question: 1,
                            correct: true,
                        },
                        HistoryItem {
                            question: 2,
                            correct: false,
                        },
                    ],
                    target_question: 3,
                },
                PredictRequest {
                    student: 1,
                    history: vec![HistoryItem {
                        question: 4,
                        correct: true,
                    }],
                    target_question: 5,
                },
            ],
            deadline_ms: None,
        })
        .unwrap()
    }

    #[test]
    fn served_predictions_match_offline_bitwise_and_cache_hits() {
        let json = model_json();
        let cfg = serve_cfg();
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let oracle_engine = Engine::from_json(&json, &cfg).unwrap();
        let server = start(Arc::clone(&engine), &cfg).unwrap();
        let port = server.port();

        let health = http_request(port, "GET", "/healthz", "").unwrap();
        assert!(health.0.contains("200"), "healthz: {}", health.0);
        assert!(health.1.contains("\"status\":\"ok\""));
        assert!(health.1.contains("\"draining\":false"));

        let body = predict_body();
        let (status, resp1) = http_request(port, "POST", "/predict", &body).unwrap();
        assert!(status.contains("200 OK"), "predict: {status} {resp1}");
        let got: PredictResponse = serde_json::from_str(&resp1).unwrap();
        let parsed: PredictBody = serde_json::from_str(&body).unwrap();
        let oracle = api::predict_batch(
            &oracle_engine.model,
            &oracle_engine.qm,
            &parsed.requests,
            cfg.window,
        )
        .unwrap();
        assert_eq!(got.predictions.len(), 2);
        for (g, o) in got.predictions.iter().zip(&oracle.predictions) {
            assert_eq!(
                g.score.to_bits(),
                o.score.to_bits(),
                "served prediction must be bit-identical to the offline batch"
            );
        }

        // The exact same body again: byte-identical response, served from
        // the session cache.
        let (_, resp2) = http_request(port, "POST", "/predict", &body).unwrap();
        assert_eq!(resp1, resp2, "repeat request must be byte-identical");
        let (hits, _) = engine.cache.stats();
        assert!(hits >= 2, "repeat body must hit the session cache: {hits}");

        // /explain end-to-end with a flattened InfluenceRecord.
        let ebody = serde_json::to_string(&ExplainBody {
            requests: vec![ExplainRequest {
                student: 9,
                history: vec![
                    HistoryItem {
                        question: 1,
                        correct: true,
                    },
                    HistoryItem {
                        question: 2,
                        correct: false,
                    },
                ],
                target: None,
            }],
            deadline_ms: None,
        })
        .unwrap();
        let (estatus, eresp) = http_request(port, "POST", "/explain", &ebody).unwrap();
        assert!(estatus.contains("200 OK"), "explain: {estatus} {eresp}");
        let parsed: ExplainResponse = serde_json::from_str(&eresp).unwrap();
        assert_eq!(parsed.explanations[0].record.target, 1);
        assert_eq!(parsed.explanations[0].record.influences.len(), 1);

        // /metrics shows the per-endpoint counters and cache hits.
        let (_, metrics) = http_request(port, "GET", "/metrics", "").unwrap();
        assert!(metrics.contains("rckt_serve_predict_requests_total"));
        assert!(metrics.contains("rckt_serve_cache_hits_total"));

        server.stop();
    }

    #[test]
    fn bad_requests_get_400_not_a_panic() {
        let json = model_json();
        let cfg = serve_cfg();
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(engine, &cfg).unwrap();
        let port = server.port();

        let (status, body) = http_request(port, "POST", "/predict", "{not json").unwrap();
        assert!(status.contains("400"), "{status}");
        assert!(body.contains("error"));

        let bad = "{\"requests\":[{\"history\":[],\"target_question\":99999999}]}";
        let (status, body) = http_request(port, "POST", "/predict", bad).unwrap();
        assert!(status.contains("400"), "{status} {body}");
        assert!(body.contains("out of range"), "{body}");

        let (status, _) = http_request(port, "GET", "/nope", "").unwrap();
        assert!(status.contains("404"));

        server.stop();
    }

    #[test]
    fn over_quota_burst_is_shed_with_retry_after() {
        let json = model_json();
        let cfg = ServeConfig {
            max_queue: 0,
            ..serve_cfg()
        };
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(engine, &cfg).unwrap();
        let port = server.port();

        // Raw request so the Retry-After header is visible.
        let body = predict_body();
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(
            s,
            "POST /predict HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        let _ = s.read_to_string(&mut raw);
        assert!(raw.contains("503 Service Unavailable"), "{raw}");
        assert!(raw.contains("Retry-After: 1"), "{raw}");

        server.stop();
    }

    #[test]
    fn shutdown_endpoint_drains_and_exits() {
        let json = model_json();
        let cfg = serve_cfg();
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(engine, &cfg).unwrap();
        let port = server.port();
        let (status, body) = http_request(port, "POST", "/shutdown", "").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("draining"));
        // The accept loop exits and the queue drains.
        server.wait();
    }

    #[test]
    fn engine_rejects_models_without_qmatrix_and_bad_windows() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let plain = model.export(ds.num_questions(), ds.num_concepts());
        let err = Engine::from_json(&plain, &serve_cfg()).unwrap_err();
        assert!(err.contains("q_matrix"), "{err}");

        let rich = model.export_with_qmatrix(&ds.q_matrix);
        let err = Engine::from_json(
            &rich,
            &ServeConfig {
                window: 10_000,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("max_len"), "{err}");
        let err = Engine::from_json(
            &rich,
            &ServeConfig {
                window: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"model-a"), fnv1a(b"model-b"));
    }
}
