//! # rckt-serve
//!
//! Batched online inference for a trained RCKT model: a std-only HTTP
//! service exposing `POST /predict` and `POST /explain` over a
//! [`SavedModel`](rckt::SavedModel) file, with
//!
//! * **micro-batching** — concurrent requests are fused into single
//!   `predict_targets` / `influences_exact` calls by a worker thread
//!   ([`batcher`]); fixed-length window padding plus row-independent eval
//!   kernels make the fused results bit-identical to solo runs;
//! * **per-student session caching** — an LRU memo keyed on a structured
//!   (model hash, kind, student, history) key answers repeated requests
//!   without touching the model, and appended histories invalidate the
//!   student's stale shorter-prefix entries ([`cache`]);
//! * **incremental warm path** ([`warm`]) — for forward-only encoders a
//!   per-student [`rckt::IncrementalState`] is kept resident in a
//!   [`cache::SessionStore`], so a live session's append-one `/predict`
//!   recomputes one position instead of the full counterfactual fan-out,
//!   with scores byte-identical to the exact path (`rckt replay-session`
//!   reproduces served bytes offline);
//! * **load-shedding** — a bounded queue answers 503 + `Retry-After`
//!   when full, per-request deadlines answer 504 when exceeded, and
//!   `POST /shutdown` drains gracefully;
//! * **observability** — request/queue latency histograms, queue-depth
//!   and cache hit-rate gauges, and per-endpoint counters land in the
//!   `rckt-obs` registry and are scrapable at `GET /metrics`;
//! * **model-quality monitoring** ([`quality`]) — every served score,
//!   `/feedback` label, and `/explain` record feeds streaming
//!   rolling-AUC/ECE, score-quantile, PSI-drift, and influence-health
//!   monitors exported as `rckt_quality_*` gauges, with an optional
//!   replayable quality log (`rckt monitor --replay`);
//! * **request-scoped tracing** — every response carries an
//!   `X-Request-Id` (client-supplied ids are honored after validation,
//!   including on 400/503/504 errors), a `Server-Timing`
//!   queue/infer breakdown, and an `X-Batch-Size` header; a structured
//!   `serve.access` event logs each request and per-request spans land
//!   in the Chrome-trace export next to the batcher's `serve/wave`
//!   spans.
//!
//! The offline entry points ([`api::predict_batch`],
//! [`api::explain_batch`]) are the same code the worker runs, so
//! `rckt predict` output is byte-comparable to served responses — CI
//! asserts exactly that.

pub mod api;
pub mod batcher;
pub mod cache;
pub mod http;
pub mod postmortem;
pub mod quality;
pub mod warm;

pub use api::{
    ApiError, ExplainBody, ExplainRequest, ExplainResponse, ExplainResponseItem, FeedbackBody,
    FeedbackEvent, FeedbackResponse, HistoryItem, PredictBody, PredictRequest, PredictResponse,
    PredictResponseItem, DEFAULT_SERVE_WINDOW,
};
pub use batcher::{cache_key, Batcher, Engine, Fleet, Job, JobReply, JobRequest, JobTiming};
pub use cache::{KeyKind, Outcome, SessionCache, SessionKey, SessionStore};
pub use postmortem::{render_report, PostmortemCtx};
pub use quality::{influence_event, Quality};
pub use warm::{WarmKind, WarmStats};

use rckt::{Rckt, SavedModel};
use rckt_obs::{
    counter, event, gauge, histogram, FlightConfig, FlightRecorder, Level, QualityEvent,
    RunManifest, SloEngine, SloSpec, Value,
};
use std::cell::RefCell;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Serving knobs; every field has a CLI flag (`rckt serve --help`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Port to bind on loopback; 0 lets the OS pick.
    pub port: u16,
    /// Largest number of requests fused into one model call.
    pub max_batch: usize,
    /// Queue capacity *per batcher shard*; submissions beyond it are
    /// shed with a 503.
    pub max_queue: usize,
    /// Batcher shards (`--workers`): independent worker threads, each
    /// owning a bounded queue. Students are routed to shards by FNV-1a of
    /// their id, so per-student ordering (and the warm path's session
    /// state) is preserved at any worker count. 0 is treated as 1.
    pub workers: usize,
    /// Fixed number of connection-handler threads (`--conn-threads`).
    /// Accepted connections queue in a bounded channel (4× this value);
    /// beyond that the accept thread sheds them with an immediate 503 —
    /// the server never spawns a thread per connection.
    pub conn_threads: usize,
    /// Fixed pad length for served windows (bounds history length).
    /// Must match the offline run being compared against.
    pub window: usize,
    /// Session-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Resident warm-path session states (0 disables the incremental
    /// warm path; has no effect on bidirectional models, which never
    /// take it).
    pub session_capacity: usize,
    /// Default per-request deadline in ms (0 = none); bodies can
    /// override via `deadline_ms`.
    pub deadline_ms: u64,
    /// Path of the replayable quality log (`--quality-log`); `None`
    /// disables logging (the in-memory monitors still run).
    pub quality_log: Option<String>,
    /// Directory for postmortem bundles (`--postmortem-dir`); `None`
    /// disables writing them (a `POST /debug/snapshot` still returns the
    /// bundle in the response body).
    pub postmortem_dir: Option<String>,
    /// SLO spec string (`--slo`, see [`SloSpec::parse`]); `None` uses
    /// [`SloSpec::default_serving`].
    pub slo: Option<String>,
    /// Byte budget for each flight-recorder ring (`--flight-bytes`);
    /// 0 uses the [`FlightConfig`] defaults.
    pub flight_bytes: usize,
    /// Test-only: when set, a request carrying an `x-rckt-test-panic`
    /// header panics the connection thread, exercising the panic-hook
    /// bundle path. Enabled via `RCKT_SERVE_TEST_PANIC=1`; never set in
    /// production.
    pub test_panic: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            max_batch: 8,
            max_queue: 64,
            workers: 1,
            conn_threads: 8,
            window: DEFAULT_SERVE_WINDOW,
            cache_capacity: 4096,
            session_capacity: 1024,
            deadline_ms: 0,
            quality_log: None,
            postmortem_dir: None,
            slo: None,
            flight_bytes: 0,
            test_panic: false,
        }
    }
}

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Every shared structure here (queues, caches, SLO state) is left in a
/// consistent state between statements, so a poisoned lock carries no
/// torn invariant — and one panicking wave must not cascade into
/// poisoned-mutex unwraps on every later request.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a 64-bit — hashes the model file so cache keys from a previous
/// model can never answer for a new one.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Engine {
    /// Build a serving engine from exported model JSON. The file must
    /// carry an embedded Q-matrix (`rckt train` writes one); without it
    /// there is no question→concept mapping to build batches from.
    pub fn from_json(json: &str, cfg: &ServeConfig) -> Result<Engine, String> {
        let saved = SavedModel::parse(json).map_err(|e| e.to_string())?;
        let qm = saved.q_matrix.clone().ok_or_else(|| {
            "model file has no embedded q_matrix; re-export it with `rckt train` \
             (which embeds the dataset's question→concept mapping)"
                .to_string()
        })?;
        if cfg.window == 0 {
            return Err("serve window must be at least 1".to_string());
        }
        if cfg.window > saved.config.max_len {
            return Err(format!(
                "serve window {} exceeds the model's trained max_len {}",
                cfg.window, saved.config.max_len
            ));
        }
        let model = Rckt::from_saved(&saved).map_err(|e| e.to_string())?;
        let quality = Quality::new(
            saved.score_reference.as_ref().map(|r| r.counts.as_slice()),
            cfg.quality_log.as_deref(),
        )
        .map_err(|e| format!("cannot open quality log: {e}"))?;
        Ok(Engine {
            model,
            qm,
            window: cfg.window,
            cache: SessionCache::new(cfg.cache_capacity),
            sessions: SessionStore::new(cfg.session_capacity),
            model_hash: fnv1a(json.as_bytes()),
            quality,
        })
    }

    /// [`Engine::from_json`] over a file path.
    pub fn from_file(path: &str, cfg: &ServeConfig) -> Result<Engine, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read model file {path}: {e}"))?;
        Engine::from_json(&json, cfg)
    }
}

struct Ctx {
    engine: Arc<Engine>,
    batcher: Arc<Fleet>,
    stop: Arc<AtomicBool>,
    started_at: Instant,
    default_deadline_ms: u64,
    port: u16,
    flight: Arc<FlightRecorder>,
    slo: Arc<Mutex<SloEngine>>,
    postmortem: Arc<PostmortemCtx>,
    test_panic: bool,
}

/// Paths whose outcomes count toward SLO good/bad accounting and the
/// `serve.request.seconds` histogram. Introspection traffic (`/debug/*`,
/// `/healthz`, `/metrics`) is excluded: a dashboard polling a degraded
/// server must not dilute — or inflate — the error budget of the
/// endpoints users actually depend on.
fn slo_eligible(path: &str) -> bool {
    !(path.starts_with("/debug") || path == "/healthz" || path == "/metrics")
}

thread_local! {
    /// The request id being served by this connection thread, so deep
    /// layers (quality alerts) can tag events with the triggering
    /// request without threading the id through every call.
    static CURRENT_REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

pub(crate) fn current_request_id() -> Option<String> {
    CURRENT_REQUEST_ID.with(|c| c.borrow().clone())
}

fn set_current_request_id(id: Option<String>) {
    CURRENT_REQUEST_ID.with(|c| *c.borrow_mut() = id);
}

/// A running inference server; [`ServeServer::wait`] blocks until
/// `POST /shutdown` (or [`ServeServer::stop`]) and then drains the queue.
pub struct ServeServer {
    port: u16,
    stop: Arc<AtomicBool>,
    batcher: Arc<Fleet>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// The fixed connection-handler pool; joined on shutdown after the
    /// accept loop exits (dropping the channel sender lets them drain
    /// what was already accepted, then exit).
    conn_handles: Vec<std::thread::JoinHandle<()>>,
    flight: Arc<FlightRecorder>,
    postmortem: Arc<PostmortemCtx>,
}

impl ServeServer {
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Per-shard batcher queue depths, indexed by shard id (the loadtest
    /// harness samples these while driving load).
    pub fn shard_queue_depths(&self) -> Vec<usize> {
        self.batcher.queue_depths()
    }

    /// Block until the accept loop exits, then drain the handler pool and
    /// the batcher so every accepted request is answered before returning.
    pub fn wait(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        for h in self.conn_handles.drain(..) {
            let _ = h.join();
        }
        self.batcher.drain_and_stop();
    }

    /// Stop from the owning thread: close the accept loop and drain.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        for h in self.conn_handles.drain(..) {
            let _ = h.join();
        }
        self.batcher.drain_and_stop();
        // Detach this server's recorder and panic context (last server
        // wins while running; a stopped server must not outlive either).
        rckt_obs::flight::uninstall(&self.flight);
        postmortem::disarm_panic_hook(&self.postmortem);
    }
}

impl Drop for ServeServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.shutdown();
        }
    }
}

/// Bind `127.0.0.1:<cfg.port>` and serve until stopped.
pub fn start(engine: Arc<Engine>, cfg: &ServeConfig) -> std::io::Result<ServeServer> {
    let slo_spec = match &cfg.slo {
        Some(s) => SloSpec::parse(s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?,
        None => SloSpec::default_serving(),
    };
    let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
    let port = listener.local_addr()?.port();
    let stop = Arc::new(AtomicBool::new(false));
    let batcher = Arc::new(Fleet::start(
        Arc::clone(&engine),
        cfg.workers,
        cfg.max_batch,
        cfg.max_queue,
    ));
    rckt_obs::set_build_info(
        option_env!("CARGO_PKG_VERSION").unwrap_or("dev"),
        &rckt_obs::git_commit(),
    );
    let flight_cfg = if cfg.flight_bytes > 0 {
        FlightConfig {
            event_bytes: cfg.flight_bytes,
            request_bytes: cfg.flight_bytes,
        }
    } else {
        FlightConfig::default()
    };
    let flight = Arc::new(FlightRecorder::new(flight_cfg));
    rckt_obs::flight::install(Arc::clone(&flight));
    let slo = Arc::new(Mutex::new(SloEngine::new(slo_spec)));
    let manifest = RunManifest::capture("rckt-serve", 0, None)
        .config("port", &port.to_string())
        .config("window", &cfg.window.to_string())
        .config("max_batch", &cfg.max_batch.to_string())
        .config("max_queue", &cfg.max_queue.to_string())
        .config("workers", &batcher.workers().to_string())
        .config("conn_threads", &cfg.conn_threads.max(1).to_string());
    let postmortem_ctx = Arc::new(PostmortemCtx::new(
        Arc::clone(&flight),
        Arc::clone(&slo),
        Arc::clone(&engine),
        manifest.to_json(),
        cfg.postmortem_dir.clone(),
    ));
    postmortem::arm_panic_hook(Arc::clone(&postmortem_ctx));
    let ctx = Arc::new(Ctx {
        engine,
        batcher: Arc::clone(&batcher),
        stop: Arc::clone(&stop),
        started_at: Instant::now(),
        default_deadline_ms: cfg.deadline_ms,
        port,
        flight: Arc::clone(&flight),
        slo,
        postmortem: Arc::clone(&postmortem_ctx),
        test_panic: cfg.test_panic,
    });
    // Bounded accept path: a fixed pool of `conn_threads` handler threads
    // pulls accepted sockets from a bounded channel. The accept loop never
    // spawns a thread — a connect flood fills the channel and is then shed
    // with an immediate 503 instead of growing the thread count without
    // bound.
    let conn_threads = cfg.conn_threads.max(1);
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(conn_threads * 4);
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    gauge("serve.conn.threads").set(conn_threads as f64);
    let mut conn_handles = Vec::with_capacity(conn_threads);
    for i in 0..conn_threads {
        let rx = Arc::clone(&conn_rx);
        let ctx = Arc::clone(&ctx);
        conn_handles.push(
            std::thread::Builder::new()
                .name(format!("rckt-serve-conn-{i}"))
                .spawn(move || conn_worker(&ctx, &rx))?,
        );
    }
    let accept_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("rckt-serve-accept".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    match conn_tx.try_send(stream) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(stream)) => shed_connection(stream),
                        Err(mpsc::TrySendError::Disconnected(_)) => break,
                    }
                }
            }
            // `conn_tx` drops here: handlers drain what was accepted,
            // then exit on the channel disconnect.
        })?;
    Ok(ServeServer {
        port,
        stop,
        batcher,
        handle: Some(handle),
        conn_handles,
        flight,
        postmortem: postmortem_ctx,
    })
}

/// One connection-handler thread: pull sockets off the bounded accept
/// channel until the accept loop drops the sender. A panic inside a
/// handler (including the test-injected one) is caught so the pool never
/// shrinks — the panic hook has already written its postmortem bundle by
/// the time the unwind reaches here.
fn conn_worker(ctx: &Ctx, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        let stream = {
            let guard = lock_recover(rx);
            guard.recv()
        };
        match stream {
            Ok(s) => {
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(ctx, s)
                }))
                .is_err()
                {
                    counter("serve.conn.panics").incr();
                    set_current_request_id(None);
                }
            }
            Err(_) => return,
        }
    }
}

/// Answer a connection the bounded accept channel has no room for: an
/// immediate 503 written from the accept thread with a short timeout, so
/// a flood degrades into fast sheds instead of unbounded threads or
/// silently dropped sockets.
fn shed_connection(mut stream: TcpStream) {
    counter("serve.conn.shed").incr();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let body = "{\"error\":\"connection queue full\"}";
    let _ = write!(
        stream,
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

const JSON: &str = "application/json";
const RETRY: &[(&str, &str)] = &[("Retry-After", "1")];

/// Monotone counter behind generated request ids.
static REQUEST_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A client-supplied `X-Request-Id` is honored only if it is 1–64
/// characters of `[A-Za-z0-9._-]`; anything else (empty, over-long,
/// control characters, header-injection attempts) gets a generated id
/// instead.
fn valid_request_id(s: &str) -> bool {
    (1..=64).contains(&s.len())
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// The request id for one connection: the validated client id, or a
/// generated `req-<pid>-<n>` unique within the process.
fn request_id(client: Option<&str>) -> String {
    match client {
        Some(id) if valid_request_id(id) => id.to_string(),
        _ => {
            let n = REQUEST_COUNTER.fetch_add(1, Ordering::Relaxed);
            format!("req-{:x}-{n:x}", std::process::id())
        }
    }
}

/// Aggregated batcher timing for one HTTP body: worst queue/infer time
/// across its jobs, the largest wave that answered any of them, and how
/// many were cache hits.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchTiming {
    pub queue_secs: f64,
    pub infer_secs: f64,
    pub batch_max: usize,
    pub cache_hits: usize,
    pub jobs: usize,
    /// Warm-path classification of the body's jobs (first classified job
    /// wins; a single-request body — the warm path's shape — has one).
    pub warm: Option<WarmKind>,
    /// Shard that answered the body's first job (a single-student body —
    /// the dominant shape — has exactly one shard).
    pub shard: usize,
}

impl BatchTiming {
    fn absorb(&mut self, t: &JobTiming) {
        self.queue_secs = self.queue_secs.max(t.queue_secs);
        self.infer_secs = self.infer_secs.max(t.infer_secs);
        self.batch_max = self.batch_max.max(t.batch_size);
        self.cache_hits += usize::from(t.cache_hit);
        if self.jobs == 0 {
            self.shard = t.shard;
        }
        self.jobs += 1;
        self.warm = self.warm.or(t.warm);
    }

    /// Label for the flight ring's `warm` column: `cache` when every job
    /// was a session-cache hit, else the warm-path classification, else
    /// `-` (exact path, errors, non-predict endpoints).
    fn warm_label(&self) -> &'static str {
        if self.jobs > 0 && self.cache_hits == self.jobs {
            "cache"
        } else {
            self.warm.map_or("-", WarmKind::as_str)
        }
    }
}

/// Per-connection request scope: the request id plus enough context to
/// stamp every response (success or error) with `X-Request-Id` and
/// timing headers, emit the `serve.access` log event, and record the
/// request's span in the Chrome trace.
struct ReqScope<'a> {
    ctx: &'a Ctx,
    id: String,
    started: Instant,
    method: &'a str,
    path: &'a str,
    /// Students named in the body (comma-joined), set by the handler
    /// once it has parsed one; lands in the flight ring's request record.
    students: RefCell<String>,
    /// Test-only (`x-rckt-test-panic: wave` with `RCKT_SERVE_TEST_PANIC=1`):
    /// poison this request's jobs so the batcher wave that picks them up
    /// panics, exercising shard restart instead of the conn-thread panic.
    poison_wave: bool,
}

impl ReqScope<'_> {
    fn respond(
        &self,
        stream: &mut TcpStream,
        status: &str,
        content_type: &str,
        extra: &[(&str, &str)],
        body: &str,
        timing: Option<&BatchTiming>,
    ) {
        let mut headers: Vec<(String, String)> =
            vec![("X-Request-Id".to_string(), self.id.clone())];
        if let Some(t) = timing {
            headers.push((
                "Server-Timing".to_string(),
                format!(
                    "queue;dur={:.3}, infer;dur={:.3}",
                    t.queue_secs * 1e3,
                    t.infer_secs * 1e3
                ),
            ));
            headers.push(("X-Batch-Size".to_string(), t.batch_max.to_string()));
        }
        for (k, v) in extra {
            headers.push((k.to_string(), v.to_string()));
        }
        let refs: Vec<(&str, &str)> = headers
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        http::respond(stream, status, content_type, &refs, body);

        let status_code: u64 = status
            .split(' ')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let total_secs = self.started.elapsed().as_secs_f64();
        let mut fields: Vec<(&str, Value)> = vec![
            ("request_id", self.id.as_str().into()),
            ("method", self.method.into()),
            ("path", self.path.into()),
            ("status", status_code.into()),
            ("total_ms", (total_secs * 1e3).into()),
        ];
        if let Some(t) = timing {
            fields.push(("queue_ms", (t.queue_secs * 1e3).into()));
            fields.push(("infer_ms", (t.infer_secs * 1e3).into()));
            fields.push(("batch", (t.batch_max as u64).into()));
            fields.push(("cache_hits", (t.cache_hits as u64).into()));
            fields.push(("jobs", (t.jobs as u64).into()));
        }
        event(Level::Info, "serve.access", &fields);
        if rckt_obs::trace_enabled() {
            rckt_obs::record_event(
                &format!("{} {} [{}]", self.method, self.path, self.id),
                "serve.request",
                self.started,
                total_secs,
            );
        }

        // Flight ring: every request (including errors) leaves a
        // structured record for postmortem bundles.
        self.ctx.flight.record_request(&rckt_obs::RequestRecord {
            ts: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs_f64())
                .unwrap_or(0.0),
            request_id: self.id.clone(),
            method: self.method.to_string(),
            path: self.path.to_string(),
            students: self.students.borrow().clone(),
            queue_micros: timing.map_or(0, |t| (t.queue_secs * 1e6) as u64),
            infer_micros: timing.map_or(0, |t| (t.infer_secs * 1e6) as u64),
            total_micros: (total_secs * 1e6) as u64,
            batch_size: timing.map_or(0, |t| t.batch_max as u64),
            status: status_code,
            warm: timing.map_or("-", BatchTiming::warm_label).to_string(),
            shard: timing.map_or_else(|| "-".to_string(), |t| t.shard.to_string()),
        });

        // SLO accounting (introspection endpoints excluded — see
        // `slo_eligible`). The engine lock is released before any bundle
        // is written: assembling a bundle re-reads the SLO state.
        if slo_eligible(self.path) {
            let alerts = {
                let mut slo = self.ctx.slo.lock().unwrap_or_else(|e| e.into_inner());
                slo.record(self.path, status_code, total_secs);
                let alerts = slo.evaluate();
                slo.publish_gauges();
                alerts
            };
            for a in &alerts {
                counter("serve.slo.alerts").incr();
                event(
                    Level::Info,
                    "slo.alert",
                    &[
                        ("objective", a.objective.as_str().into()),
                        ("window", a.window.into()),
                        ("burn_rate", a.burn_rate.into()),
                        ("threshold", a.threshold.into()),
                        ("request_id", self.id.as_str().into()),
                    ],
                );
                // An alert is exactly the moment the evidence is still in
                // the ring — capture it before it scrolls away.
                let _ = postmortem::write_bundle(
                    &self.ctx.postmortem,
                    &format!("slo-alert:{}:{}", a.objective, a.window),
                );
            }
        }
    }
}

fn respond_api_error(stream: &mut TcpStream, scope: &ReqScope<'_>, e: &ApiError) {
    let (status, extra): (&str, &[(&str, &str)]) = match e {
        ApiError::BadRequest(_) => ("400 Bad Request", &[]),
        ApiError::Overloaded | ApiError::Draining => ("503 Service Unavailable", RETRY),
        ApiError::DeadlineExceeded => ("504 Gateway Timeout", &[]),
        ApiError::Internal(_) => ("500 Internal Server Error", &[]),
    };
    scope.respond(
        stream,
        status,
        JSON,
        extra,
        &http::error_body(&e.to_string()),
        None,
    );
}

/// Comma-join the first few student ids of a body for the flight ring
/// (capped so one huge batch cannot dominate the request ring's bytes).
fn join_students(ids: impl Iterator<Item = u32>) -> String {
    const CAP: usize = 16;
    let ids: Vec<u32> = ids.collect();
    let mut s = ids
        .iter()
        .take(CAP)
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    if ids.len() > CAP {
        s.push_str(&format!(",+{}", ids.len() - CAP));
    }
    s
}

fn deadline_from(body_ms: Option<u64>, default_ms: u64) -> Option<Instant> {
    match body_ms.unwrap_or(default_ms) {
        0 => None,
        ms => Some(Instant::now() + Duration::from_millis(ms)),
    }
}

/// Enqueue one validated request set and collect outcomes in body order,
/// along with the aggregated timing breakdown across the body's jobs.
fn run_jobs(
    ctx: &Ctx,
    reqs: Vec<JobRequest>,
    deadline: Option<Instant>,
    poison: bool,
) -> Result<(Vec<Outcome>, BatchTiming), ApiError> {
    let (tx, rx) = mpsc::channel();
    let n = reqs.len();
    for (index, req) in reqs.into_iter().enumerate() {
        ctx.batcher.submit(Job {
            key: cache_key(ctx.engine.model_hash, &req),
            req,
            index,
            enqueued: Instant::now(),
            deadline,
            reply: tx.clone(),
            poison,
        })?;
    }
    drop(tx);
    let mut out: Vec<Option<Outcome>> = vec![None; n];
    let mut timing = BatchTiming::default();
    for _ in 0..n {
        let (index, result, t) = rx
            .recv()
            .map_err(|_| ApiError::Internal("batch worker exited".to_string()))?;
        timing.absorb(&t);
        out[index] = Some(result?);
    }
    Ok((out.into_iter().map(Option::unwrap).collect(), timing))
}

fn handle_predict(ctx: &Ctx, scope: &ReqScope<'_>, body: &[u8], stream: &mut TcpStream) {
    counter("serve.predict.requests").incr();
    let parsed: PredictBody = match serde_json::from_slice(body) {
        Ok(b) => b,
        Err(e) => {
            scope.respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("invalid /predict body: {e}")),
                None,
            );
            return;
        }
    };
    *scope.students.borrow_mut() = join_students(parsed.requests.iter().map(|r| r.student));
    // Validate the whole body at the door: one bad element fails the
    // request with a 400 before anything is queued.
    for (i, r) in parsed.requests.iter().enumerate() {
        if let Err(e) = api::predict_window(r, &ctx.engine.model, &ctx.engine.qm, ctx.engine.window)
        {
            scope.respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("request {i}: {e}")),
                None,
            );
            return;
        }
    }
    let deadline = deadline_from(parsed.deadline_ms, ctx.default_deadline_ms);
    let jobs = parsed
        .requests
        .into_iter()
        .map(JobRequest::Predict)
        .collect();
    match run_jobs(ctx, jobs, deadline, scope.poison_wave) {
        Ok((outcomes, timing)) => {
            // Feed the quality monitors before answering so a /metrics
            // scrape issued after this response already sees the score.
            for o in &outcomes {
                if let Outcome::Predict(p) = o {
                    ctx.engine
                        .quality
                        .observe(QualityEvent::Score(f64::from(p.score)));
                }
            }
            let resp = PredictResponse {
                predictions: outcomes
                    .into_iter()
                    .map(|o| match o {
                        Outcome::Predict(p) => p,
                        Outcome::Explain(_) => unreachable!("predict key yields predict outcome"),
                    })
                    .collect(),
            };
            histogram("serve.request.seconds").observe(scope.started.elapsed().as_secs_f64());
            scope.respond(
                stream,
                "200 OK",
                JSON,
                &[],
                &serde_json::to_string(&resp).unwrap(),
                Some(&timing),
            );
        }
        Err(e) => respond_api_error(stream, scope, &e),
    }
}

fn handle_explain(ctx: &Ctx, scope: &ReqScope<'_>, body: &[u8], stream: &mut TcpStream) {
    counter("serve.explain.requests").incr();
    let parsed: ExplainBody = match serde_json::from_slice(body) {
        Ok(b) => b,
        Err(e) => {
            scope.respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("invalid /explain body: {e}")),
                None,
            );
            return;
        }
    };
    *scope.students.borrow_mut() = join_students(parsed.requests.iter().map(|r| r.student));
    for (i, r) in parsed.requests.iter().enumerate() {
        if let Err(e) = api::explain_window(r, &ctx.engine.model, &ctx.engine.qm, ctx.engine.window)
        {
            scope.respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("request {i}: {e}")),
                None,
            );
            return;
        }
    }
    let deadline = deadline_from(parsed.deadline_ms, ctx.default_deadline_ms);
    let jobs = parsed
        .requests
        .into_iter()
        .map(JobRequest::Explain)
        .collect();
    match run_jobs(ctx, jobs, deadline, scope.poison_wave) {
        Ok((outcomes, timing)) => {
            for o in &outcomes {
                if let Outcome::Explain(e) = o {
                    ctx.engine.quality.observe(influence_event(&e.record));
                }
            }
            let resp = ExplainResponse {
                explanations: outcomes
                    .into_iter()
                    .map(|o| match o {
                        Outcome::Explain(e) => e,
                        Outcome::Predict(_) => unreachable!("explain key yields explain outcome"),
                    })
                    .collect(),
            };
            histogram("serve.request.seconds").observe(scope.started.elapsed().as_secs_f64());
            scope.respond(
                stream,
                "200 OK",
                JSON,
                &[],
                &serde_json::to_string(&resp).unwrap(),
                Some(&timing),
            );
        }
        Err(e) => respond_api_error(stream, scope, &e),
    }
}

/// `POST /feedback` — ground truth arrived for earlier predictions; each
/// event feeds the rolling AUC/ECE monitors (and the quality log).
fn handle_feedback(ctx: &Ctx, scope: &ReqScope<'_>, body: &[u8], stream: &mut TcpStream) {
    counter("serve.feedback.requests").incr();
    let parsed: FeedbackBody = match serde_json::from_slice(body) {
        Ok(b) => b,
        Err(e) => {
            scope.respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!("invalid /feedback body: {e}")),
                None,
            );
            return;
        }
    };
    *scope.students.borrow_mut() = join_students(parsed.events.iter().map(|e| e.student));
    for (i, ev) in parsed.events.iter().enumerate() {
        if !ev.score.is_finite() || !(0.0..=1.0).contains(&ev.score) {
            scope.respond(
                stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&format!(
                    "event {i}: score {} is not a probability in [0, 1]",
                    ev.score
                )),
                None,
            );
            return;
        }
    }
    for ev in &parsed.events {
        ctx.engine.quality.observe(QualityEvent::Feedback {
            score: ev.score,
            label: ev.correct,
        });
    }
    let resp = FeedbackResponse {
        accepted: parsed.events.len(),
    };
    scope.respond(
        stream,
        "200 OK",
        JSON,
        &[],
        &serde_json::to_string(&resp).unwrap(),
        None,
    );
}

fn handle_connection(ctx: &Ctx, mut stream: TcpStream) {
    let started = Instant::now();
    let req = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            // No parseable request — still mint an id so the error is
            // findable in the access log.
            let scope = ReqScope {
                ctx,
                id: request_id(None),
                started,
                method: "-",
                path: "-",
                students: RefCell::new(String::new()),
                poison_wave: false,
            };
            scope.respond(
                &mut stream,
                "400 Bad Request",
                JSON,
                &[],
                &http::error_body(&e.to_string()),
                None,
            );
            return;
        }
    };
    // Test-only (`RCKT_SERVE_TEST_PANIC=1`): `x-rckt-test-panic: wave`
    // poisons the request's batcher wave (shard-restart path); any other
    // value panics this connection handler (panic-hook bundle path).
    let test_panic = ctx
        .test_panic
        .then(|| req.header("x-rckt-test-panic"))
        .flatten();
    let scope = ReqScope {
        ctx,
        id: request_id(req.header("x-request-id")),
        started,
        method: &req.method,
        path: &req.path,
        students: RefCell::new(String::new()),
        poison_wave: test_panic == Some("wave"),
    };
    set_current_request_id(Some(scope.id.clone()));
    if test_panic.is_some() && !scope.poison_wave {
        panic!("test panic requested by {}", scope.id);
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/predict") => handle_predict(ctx, &scope, &req.body, &mut stream),
        ("POST", "/explain") => handle_explain(ctx, &scope, &req.body, &mut stream),
        ("POST", "/feedback") => handle_feedback(ctx, &scope, &req.body, &mut stream),
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"model_hash\":\"{:016x}\",\"draining\":{},\"window\":{},\"workers\":{},\"uptime_secs\":{:.3}}}",
                ctx.engine.model_hash,
                ctx.batcher.is_draining(),
                ctx.engine.window,
                ctx.batcher.workers(),
                ctx.started_at.elapsed().as_secs_f64(),
            );
            scope.respond(&mut stream, "200 OK", JSON, &[], &body, None);
        }
        ("GET", "/metrics") => {
            gauge("uptime.seconds").set(ctx.started_at.elapsed().as_secs_f64());
            // Publish SLO gauges even before any eligible traffic, so a
            // scrape always sees the full rckt_slo_* family.
            ctx.slo
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .publish_gauges();
            scope.respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &[],
                &rckt_obs::prometheus::render(),
                None,
            );
        }
        ("GET", "/debug/flight") => {
            let body = ctx.flight.snapshot_json();
            scope.respond(&mut stream, "200 OK", JSON, &[], &body, None);
        }
        ("GET", "/debug/slo") => {
            let body = ctx
                .slo
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .snapshot_json();
            scope.respond(&mut stream, "200 OK", JSON, &[], &body, None);
        }
        ("POST", "/debug/snapshot") => {
            // Returns the bundle itself so it can be piped straight into
            // `rckt postmortem`; a configured --postmortem-dir also gets
            // a file (its path is in the `postmortem.written` event).
            let (bundle, _path) = postmortem::write_bundle(&ctx.postmortem, "snapshot");
            scope.respond(&mut stream, "200 OK", JSON, &[], &bundle, None);
        }
        ("POST", "/shutdown") => {
            // Reject new work immediately; already-queued jobs are still
            // answered (the accept loop exits, then wait()/stop() drains).
            ctx.batcher.begin_drain();
            ctx.stop.store(true, Ordering::SeqCst);
            scope.respond(
                &mut stream,
                "200 OK",
                JSON,
                &[],
                "{\"status\":\"draining\"}",
                None,
            );
            // Unblock accept() so the loop observes the stop flag.
            let _ = TcpStream::connect(("127.0.0.1", ctx.port));
        }
        ("GET" | "POST", _) => {
            scope.respond(
                &mut stream,
                "404 Not Found",
                JSON,
                &[],
                &http::error_body(
                    "not found; try /predict /explain /feedback /healthz /metrics \
                     /debug/flight /debug/slo /debug/snapshot /shutdown",
                ),
                None,
            );
        }
        _ => {
            scope.respond(
                &mut stream,
                "405 Method Not Allowed",
                JSON,
                &[],
                &http::error_body("method not allowed"),
                None,
            );
        }
    }
    set_current_request_id(None);
}

/// Send one request to a running server and return `(status_line, body)`.
/// Shared by the integration tests and the latency benchmark.
pub fn http_request(
    port: u16,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(String, String)> {
    let mut s = TcpStream::connect(("127.0.0.1", port))?;
    s.set_read_timeout(Some(Duration::from_secs(60)))?;
    s.set_write_timeout(Some(Duration::from_secs(60)))?;
    write!(
        s,
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    use std::io::Read as _;
    let _ = s.read_to_string(&mut raw);
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = match raw.split_once("\r\n\r\n") {
        Some((_, b)) => b.to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt::{Backbone, RcktConfig};
    use rckt_data::SyntheticSpec;
    use std::io::Read as _;

    fn model_json() -> String {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        model.export_with_qmatrix(&ds.q_matrix)
    }

    fn serve_cfg() -> ServeConfig {
        ServeConfig {
            window: 16,
            ..Default::default()
        }
    }

    /// An engine built without the JSON export/import round-trip, for
    /// tests that only exercise the HTTP/observability layer.
    fn direct_engine(cfg: &ServeConfig) -> Arc<Engine> {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        Arc::new(Engine {
            model,
            qm: ds.q_matrix,
            window: cfg.window,
            cache: SessionCache::new(cfg.cache_capacity),
            sessions: SessionStore::new(cfg.session_capacity),
            model_hash: 0xbeef,
            quality: Quality::new(None, None).unwrap(),
        })
    }

    fn predict_body() -> String {
        serde_json::to_string(&PredictBody {
            requests: vec![
                PredictRequest {
                    student: 0,
                    history: vec![
                        HistoryItem {
                            question: 1,
                            correct: true,
                        },
                        HistoryItem {
                            question: 2,
                            correct: false,
                        },
                    ],
                    target_question: 3,
                },
                PredictRequest {
                    student: 1,
                    history: vec![HistoryItem {
                        question: 4,
                        correct: true,
                    }],
                    target_question: 5,
                },
            ],
            deadline_ms: None,
        })
        .unwrap()
    }

    #[test]
    fn served_predictions_match_offline_bitwise_and_cache_hits() {
        let json = model_json();
        let cfg = serve_cfg();
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let oracle_engine = Engine::from_json(&json, &cfg).unwrap();
        let server = start(Arc::clone(&engine), &cfg).unwrap();
        let port = server.port();

        let health = http_request(port, "GET", "/healthz", "").unwrap();
        assert!(health.0.contains("200"), "healthz: {}", health.0);
        assert!(health.1.contains("\"status\":\"ok\""));
        assert!(health.1.contains("\"draining\":false"));

        let body = predict_body();
        let (status, resp1) = http_request(port, "POST", "/predict", &body).unwrap();
        assert!(status.contains("200 OK"), "predict: {status} {resp1}");
        let got: PredictResponse = serde_json::from_str(&resp1).unwrap();
        let parsed: PredictBody = serde_json::from_str(&body).unwrap();
        let oracle = api::predict_batch(
            &oracle_engine.model,
            &oracle_engine.qm,
            &parsed.requests,
            cfg.window,
        )
        .unwrap();
        assert_eq!(got.predictions.len(), 2);
        for (g, o) in got.predictions.iter().zip(&oracle.predictions) {
            assert_eq!(
                g.score.to_bits(),
                o.score.to_bits(),
                "served prediction must be bit-identical to the offline batch"
            );
        }

        // The exact same body again: byte-identical response, served from
        // the session cache.
        let (_, resp2) = http_request(port, "POST", "/predict", &body).unwrap();
        assert_eq!(resp1, resp2, "repeat request must be byte-identical");
        let (hits, _) = engine.cache.stats();
        assert!(hits >= 2, "repeat body must hit the session cache: {hits}");

        // /explain end-to-end with a flattened InfluenceRecord.
        let ebody = serde_json::to_string(&ExplainBody {
            requests: vec![ExplainRequest {
                student: 9,
                history: vec![
                    HistoryItem {
                        question: 1,
                        correct: true,
                    },
                    HistoryItem {
                        question: 2,
                        correct: false,
                    },
                ],
                target: None,
            }],
            deadline_ms: None,
        })
        .unwrap();
        let (estatus, eresp) = http_request(port, "POST", "/explain", &ebody).unwrap();
        assert!(estatus.contains("200 OK"), "explain: {estatus} {eresp}");
        let parsed: ExplainResponse = serde_json::from_str(&eresp).unwrap();
        assert_eq!(parsed.explanations[0].record.target, 1);
        assert_eq!(parsed.explanations[0].record.influences.len(), 1);

        // /metrics shows the per-endpoint counters and cache hits.
        let (_, metrics) = http_request(port, "GET", "/metrics", "").unwrap();
        assert!(metrics.contains("rckt_serve_predict_requests_total"));
        assert!(metrics.contains("rckt_serve_cache_hits_total"));

        server.stop();
    }

    #[test]
    fn bad_requests_get_400_not_a_panic() {
        let json = model_json();
        let cfg = serve_cfg();
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(engine, &cfg).unwrap();
        let port = server.port();

        let (status, body) = http_request(port, "POST", "/predict", "{not json").unwrap();
        assert!(status.contains("400"), "{status}");
        assert!(body.contains("error"));

        let bad = "{\"requests\":[{\"history\":[],\"target_question\":99999999}]}";
        let (status, body) = http_request(port, "POST", "/predict", bad).unwrap();
        assert!(status.contains("400"), "{status} {body}");
        assert!(body.contains("out of range"), "{body}");

        let (status, _) = http_request(port, "GET", "/nope", "").unwrap();
        assert!(status.contains("404"));

        server.stop();
    }

    #[test]
    fn over_quota_burst_is_shed_with_retry_after() {
        let json = model_json();
        let cfg = ServeConfig {
            max_queue: 0,
            ..serve_cfg()
        };
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(engine, &cfg).unwrap();
        let port = server.port();

        // Raw request so the Retry-After header is visible.
        let body = predict_body();
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(
            s,
            "POST /predict HTTP/1.1\r\nHost: l\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        let _ = s.read_to_string(&mut raw);
        assert!(raw.contains("503 Service Unavailable"), "{raw}");
        assert!(raw.contains("Retry-After: 1"), "{raw}");
        // Error responses carry a request id too.
        assert!(raw.contains("X-Request-Id: "), "{raw}");

        server.stop();
    }

    /// Send a raw request string and return the full raw response
    /// (status line + headers + body) so headers can be asserted on.
    fn raw_request(port: u16, raw: &str) -> String {
        let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    fn header_value<'a>(raw: &'a str, name: &str) -> Option<&'a str> {
        raw.lines()
            .find_map(|l| l.strip_prefix(&format!("{name}: ")))
            .map(str::trim)
    }

    #[test]
    fn request_ids_are_echoed_validated_and_always_present() {
        let json = model_json();
        let cfg = serve_cfg();
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(engine, &cfg).unwrap();
        let port = server.port();
        let body = predict_body();

        // A well-formed client id is echoed verbatim, and batched
        // responses carry the timing breakdown headers.
        let raw = raw_request(
            port,
            &format!(
                "POST /predict HTTP/1.1\r\nHost: l\r\nX-Request-Id: trace.abc-123\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(raw.contains("200 OK"), "{raw}");
        assert_eq!(header_value(&raw, "X-Request-Id"), Some("trace.abc-123"));
        assert!(
            header_value(&raw, "Server-Timing")
                .is_some_and(|v| v.contains("queue;dur=") && v.contains("infer;dur=")),
            "{raw}"
        );
        assert!(header_value(&raw, "X-Batch-Size").is_some(), "{raw}");

        // An invalid id (spaces → header-injection risk) is replaced by a
        // generated one rather than echoed.
        let raw = raw_request(
            port,
            &format!(
                "POST /predict HTTP/1.1\r\nHost: l\r\nX-Request-Id: evil id\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        let id = header_value(&raw, "X-Request-Id").unwrap();
        assert!(
            id.starts_with("req-"),
            "invalid client id must be replaced: {id}"
        );

        // Over-long ids are replaced too.
        let long = "a".repeat(65);
        let raw = raw_request(
            port,
            &format!(
                "POST /predict HTTP/1.1\r\nHost: l\r\nX-Request-Id: {long}\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(header_value(&raw, "X-Request-Id")
            .unwrap()
            .starts_with("req-"));

        // 400s echo the client id as well.
        let raw = raw_request(
            port,
            "POST /predict HTTP/1.1\r\nHost: l\r\nX-Request-Id: err-1\r\nContent-Length: 4\r\n\r\n{bad",
        );
        assert!(raw.contains("400 Bad Request"), "{raw}");
        assert_eq!(header_value(&raw, "X-Request-Id"), Some("err-1"));

        server.stop();
    }

    #[test]
    fn feedback_feeds_quality_monitors_and_log_replays_byte_identically() {
        let dir = std::env::temp_dir().join(format!("rckt-serve-quality-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("quality.csv");
        let json = model_json();
        let cfg = ServeConfig {
            quality_log: Some(log_path.to_str().unwrap().to_string()),
            ..serve_cfg()
        };
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(Arc::clone(&engine), &cfg).unwrap();
        let port = server.port();

        // Serve predictions, then feed their scores back with labels so
        // the rolling AUC/ECE windows fill past min_samples.
        let (status, resp) = http_request(port, "POST", "/predict", &predict_body()).unwrap();
        assert!(status.contains("200"), "{status}");
        let got: PredictResponse = serde_json::from_str(&resp).unwrap();
        let mut events = Vec::new();
        for round in 0..12u32 {
            for (i, p) in got.predictions.iter().enumerate() {
                events.push(serde_json::json!({
                    "student": i as u32,
                    "score": p.score,
                    "correct": (round + i as u32) % 2 == 0,
                }));
            }
        }
        let fb = serde_json::json!({ "events": events }).to_string();
        let (status, body) = http_request(port, "POST", "/feedback", &fb).unwrap();
        assert!(status.contains("200"), "{status} {body}");
        let accepted: FeedbackResponse = serde_json::from_str(&body).unwrap();
        assert_eq!(accepted.accepted, 24);

        // Out-of-range scores are rejected wholesale with a 400.
        let bad = "{\"events\":[{\"score\":1.5,\"correct\":true}]}";
        let (status, body) = http_request(port, "POST", "/feedback", bad).unwrap();
        assert!(status.contains("400"), "{status}");
        assert!(body.contains("probability"), "{body}");

        // /explain contributes influence-health stats.
        let ebody = "{\"requests\":[{\"student\":7,\"history\":[{\"question\":1,\"correct\":true},\
                     {\"question\":2,\"correct\":false}],\"target\":null}]}";
        let (status, _) = http_request(port, "POST", "/explain", ebody).unwrap();
        assert!(status.contains("200"), "{status}");

        // The quality gauge families are exported on /metrics. (Values are
        // not asserted here: the registry is process-global and other
        // tests run in parallel; CI's single-server step diffs values.)
        let (_, metrics) = http_request(port, "GET", "/metrics", "").unwrap();
        for name in [
            "rckt_quality_auc",
            "rckt_quality_ece",
            "rckt_quality_score_p50",
            "rckt_quality_influence_entropy",
        ] {
            assert!(metrics.contains(name), "missing {name} in /metrics");
        }

        // Replaying the quality log through a fresh monitor reproduces the
        // live report byte-for-byte — the `rckt monitor --replay` contract.
        let live = engine.quality.report();
        assert!(live.contains("rckt_quality_auc "), "{live}");
        let mut replay = rckt_obs::QualityMonitor::new(rckt_obs::MonitorConfig::default());
        for line in std::fs::read_to_string(&log_path).unwrap().lines() {
            if let Some(counts) = rckt_obs::monitor::decode_reference(line) {
                replay.set_reference(&counts);
            } else if let Some(ev) = QualityEvent::decode(line) {
                replay.ingest(&ev);
            } else {
                panic!("unparseable quality log line: {line}");
            }
        }
        assert_eq!(
            replay.render_report(),
            live,
            "replayed quality log must reproduce the live report byte-for-byte"
        );

        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn debug_endpoints_expose_flight_ring_and_slo_state() {
        let cfg = serve_cfg();
        let server = start(direct_engine(&cfg), &cfg).unwrap();
        let port = server.port();

        // Give the ring some traffic with a known request id.
        let raw = raw_request(
            port,
            "GET /healthz HTTP/1.1\r\nHost: l\r\nX-Request-Id: flight-probe-1\r\n\r\n",
        );
        assert!(raw.contains("200 OK"), "{raw}");

        let (status, flight) = http_request(port, "GET", "/debug/flight", "").unwrap();
        assert!(status.contains("200"), "{status}");
        let snap = rckt_obs::json::parse(&flight).unwrap();
        let requests = snap.get("requests").and_then(|r| r.as_array()).unwrap();
        assert!(
            requests.iter().any(|r| {
                r.get("request_id").and_then(|v| v.as_str()) == Some("flight-probe-1")
                    && r.get("path").and_then(|v| v.as_str()) == Some("/healthz")
                    && r.get("status").and_then(|v| v.as_f64()) == Some(200.0)
            }),
            "healthz record missing from the ring: {flight}"
        );

        // Introspection traffic (/healthz, /metrics, /debug/*) must not
        // count toward any SLO objective's good/bad totals.
        let (_, _) = http_request(port, "GET", "/metrics", "").unwrap();
        let (status, slo) = http_request(port, "GET", "/debug/slo", "").unwrap();
        assert!(status.contains("200"), "{status}");
        let snap = rckt_obs::json::parse(&slo).unwrap();
        let objectives = snap.get("objectives").and_then(|o| o.as_array()).unwrap();
        assert!(!objectives.is_empty(), "{slo}");
        for o in objectives {
            assert_eq!(
                o.get("good_total").and_then(|v| v.as_f64()),
                Some(0.0),
                "introspection traffic leaked into SLO accounting: {slo}"
            );
            assert_eq!(
                o.get("bad_total").and_then(|v| v.as_f64()),
                Some(0.0),
                "{slo}"
            );
        }

        // Satellite gauges are on /metrics.
        let (_, metrics) = http_request(port, "GET", "/metrics", "").unwrap();
        assert!(metrics.contains("rckt_build_info{"), "{metrics}");
        assert!(metrics.contains("rckt_uptime_seconds"), "{metrics}");
        assert!(metrics.contains("rckt_slo_"), "{metrics}");

        server.stop();
    }

    #[test]
    fn snapshot_bundle_round_trips_through_the_postmortem_renderer() {
        let dir = std::env::temp_dir().join(format!("rckt-serve-pm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ServeConfig {
            postmortem_dir: Some(dir.to_str().unwrap().to_string()),
            ..serve_cfg()
        };
        let server = start(direct_engine(&cfg), &cfg).unwrap();
        let port = server.port();

        let raw = raw_request(
            port,
            "GET /healthz HTTP/1.1\r\nHost: l\r\nX-Request-Id: bundle-probe\r\n\r\n",
        );
        assert!(raw.contains("200 OK"), "{raw}");

        // The snapshot response body IS the bundle; the offline renderer
        // (the `rckt postmortem` twin) accepts it directly.
        let (status, bundle) = http_request(port, "POST", "/debug/snapshot", "").unwrap();
        assert!(status.contains("200"), "{status}");
        let report = postmortem::render_report(&bundle).unwrap();
        assert!(report.contains("== rckt postmortem =="), "{report}");
        assert!(report.contains("reason:   snapshot"), "{report}");
        assert!(report.contains("bundle-probe"), "{report}");

        // The strict parser round-trips it and the sections are present.
        let parsed = rckt_obs::json::parse(&bundle).unwrap();
        assert_eq!(
            parsed.get("bundle").and_then(|v| v.as_str()),
            Some("rckt-postmortem/v1")
        );
        for section in ["manifest", "flight", "metrics", "quality", "slo"] {
            assert!(parsed.get(section).is_some(), "missing {section}: {bundle}");
        }

        // And a file landed in --postmortem-dir.
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("postmortem-"))
            .collect();
        assert!(!files.is_empty(), "no bundle file in --postmortem-dir");

        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_produces_a_bundle_holding_the_final_requests() {
        let dir = std::env::temp_dir().join(format!("rckt-serve-panic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ServeConfig {
            postmortem_dir: Some(dir.to_str().unwrap().to_string()),
            test_panic: true,
            ..serve_cfg()
        };
        let server = start(direct_engine(&cfg), &cfg).unwrap();
        let port = server.port();

        for i in 0..3 {
            let raw = raw_request(
                port,
                &format!("GET /healthz HTTP/1.1\r\nHost: l\r\nX-Request-Id: final-req-{i}\r\n\r\n"),
            );
            assert!(raw.contains("200 OK"), "{raw}");
        }

        // The poisoned request panics its connection thread; the hook
        // writes the bundle before the thread dies. Parallel tests'
        // servers may steal the process-global panic context between
        // attempts, so re-arm and retry until our bundle appears.
        let mut bundle = None;
        for _ in 0..50 {
            postmortem::arm_panic_hook(Arc::clone(&server.postmortem));
            let _ = raw_request(
                port,
                "GET /healthz HTTP/1.1\r\nHost: l\r\nx-rckt-test-panic: 1\r\n\r\n",
            );
            let deadline = Instant::now() + Duration::from_millis(500);
            while bundle.is_none() && Instant::now() < deadline {
                bundle = std::fs::read_dir(&dir)
                    .unwrap()
                    .flatten()
                    .find(|e| e.file_name().to_string_lossy().starts_with("postmortem-"))
                    .and_then(|f| std::fs::read_to_string(f.path()).ok());
                if bundle.is_none() {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            if bundle.is_some() {
                break;
            }
        }
        let bundle = bundle.expect("panic hook never wrote a bundle");

        let parsed = rckt_obs::json::parse(&bundle).unwrap();
        assert_eq!(parsed.get("reason").and_then(|v| v.as_str()), Some("panic"));
        let reqs = parsed
            .get("flight")
            .and_then(|f| f.get("requests"))
            .and_then(|r| r.as_array())
            .unwrap();
        for i in 0..3 {
            let id = format!("final-req-{i}");
            assert!(
                reqs.iter()
                    .any(|r| r.get("request_id").and_then(|v| v.as_str()) == Some(id.as_str())),
                "final request {id} missing from the panic bundle"
            );
        }
        let report = postmortem::render_report(&bundle).unwrap();
        assert!(report.contains("reason:   panic"), "{report}");

        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_endpoint_drains_and_exits() {
        let json = model_json();
        let cfg = serve_cfg();
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(engine, &cfg).unwrap();
        let port = server.port();
        let (status, body) = http_request(port, "POST", "/shutdown", "").unwrap();
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("draining"));
        // The accept loop exits and the queue drains.
        server.wait();
    }

    #[test]
    fn engine_rejects_models_without_qmatrix_and_bad_windows() {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let plain = model.export(ds.num_questions(), ds.num_concepts());
        let err = Engine::from_json(&plain, &serve_cfg()).unwrap_err();
        assert!(err.contains("q_matrix"), "{err}");

        let rich = model.export_with_qmatrix(&ds.q_matrix);
        let err = Engine::from_json(
            &rich,
            &ServeConfig {
                window: 10_000,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("max_len"), "{err}");
        let err = Engine::from_json(
            &rich,
            &ServeConfig {
                window: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn fnv1a_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"model-a"), fnv1a(b"model-b"));
    }

    #[test]
    fn served_bytes_are_identical_at_every_worker_count() {
        // The sharding contract: routing students across 1, 2, or 4
        // batcher shards must not change a single served byte. Eight
        // students guarantee every shard of a 4-worker fleet sees
        // traffic mixed into waves differently than the 1-worker run.
        let json = model_json();
        let body = serde_json::to_string(&PredictBody {
            requests: (0..8u32)
                .map(|s| PredictRequest {
                    student: s,
                    history: vec![
                        HistoryItem {
                            question: s % 5 + 1,
                            correct: s % 2 == 0,
                        },
                        HistoryItem {
                            question: s % 7 + 1,
                            correct: s % 3 == 0,
                        },
                    ],
                    target_question: s % 4 + 1,
                })
                .collect(),
            deadline_ms: None,
        })
        .unwrap();

        let mut responses = Vec::new();
        for workers in [1usize, 2, 4] {
            let cfg = ServeConfig {
                workers,
                ..serve_cfg()
            };
            let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
            let server = start(engine, &cfg).unwrap();
            let (status, resp) = http_request(server.port(), "POST", "/predict", &body).unwrap();
            assert!(status.contains("200"), "workers={workers}: {status} {resp}");
            responses.push((workers, resp));
            server.stop();
        }
        let (_, baseline) = &responses[0];
        for (workers, resp) in &responses[1..] {
            assert_eq!(
                resp, baseline,
                "served bytes changed between --workers 1 and --workers {workers}"
            );
        }

        // And the 1-worker baseline matches the offline oracle bitwise.
        let cfg = serve_cfg();
        let oracle_engine = Engine::from_json(&json, &cfg).unwrap();
        let parsed: PredictBody = serde_json::from_str(&body).unwrap();
        let oracle = api::predict_batch(
            &oracle_engine.model,
            &oracle_engine.qm,
            &parsed.requests,
            cfg.window,
        )
        .unwrap();
        let got: PredictResponse = serde_json::from_str(baseline).unwrap();
        for (g, o) in got.predictions.iter().zip(&oracle.predictions) {
            assert_eq!(g.score.to_bits(), o.score.to_bits());
        }
    }

    #[test]
    fn connect_flood_is_shed_by_the_bounded_accept_path() {
        let cfg = ServeConfig {
            conn_threads: 2,
            ..serve_cfg()
        };
        let server = start(direct_engine(&cfg), &cfg).unwrap();
        let port = server.port();

        // Saturate the fixed pool (2 handlers) and the bounded accept
        // channel (2 × 4 = 8 slots) with idle connections that send no
        // bytes: handlers block in read, the channel fills behind them.
        let mut idle = Vec::new();
        for _ in 0..10 {
            let s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            idle.push(s);
            // Let the accept thread queue it before the next connect so
            // the channel is deterministically full afterwards.
            std::thread::sleep(Duration::from_millis(20));
        }

        // Connections beyond pool + channel are shed by the accept thread
        // itself with an immediate 503 — not a hang, not a new thread.
        let mut shed_seen = 0;
        for _ in 0..3 {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut raw = String::new();
            let _ = s.read_to_string(&mut raw);
            if raw.contains("503") && raw.contains("connection queue full") {
                shed_seen += 1;
            }
        }
        assert!(
            shed_seen > 0,
            "no connection was shed with a 503 while pool and channel were saturated"
        );

        // Release the flood: handlers fail the idle sockets with a 400
        // (connection closed mid-headers) and drain the channel, after
        // which a real request is served normally.
        drop(idle);
        let (status, resp) = http_request(port, "POST", "/predict", &predict_body()).unwrap();
        assert!(
            status.contains("200"),
            "post-flood request: {status} {resp}"
        );

        let (_, metrics) = http_request(port, "GET", "/metrics", "").unwrap();
        assert!(metrics.contains("rckt_serve_conn_shed_total"), "{metrics}");
        assert!(metrics.contains("rckt_serve_conn_threads"), "{metrics}");

        server.stop();
    }

    #[test]
    fn wave_panic_answers_500_and_the_shard_keeps_serving() {
        let json = model_json();
        let cfg = ServeConfig {
            test_panic: true,
            ..serve_cfg()
        };
        let engine = Arc::new(Engine::from_json(&json, &cfg).unwrap());
        let server = start(engine, &cfg).unwrap();
        let port = server.port();
        let body = predict_body();

        // `x-rckt-test-panic: wave` poisons this request's batcher jobs:
        // the wave that picks them up panics inside the shard worker. The
        // client must get a 500 — not hang until its socket timeout.
        let raw = raw_request(
            port,
            &format!(
                "POST /predict HTTP/1.1\r\nHost: l\r\nx-rckt-test-panic: wave\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        assert!(raw.contains("500 Internal Server Error"), "{raw}");
        assert!(raw.contains("batch worker"), "{raw}");

        // The shard restarted: the very next plain request is served, and
        // its bytes still match a fresh engine's offline answer.
        let (status, resp) = http_request(port, "POST", "/predict", &body).unwrap();
        assert!(
            status.contains("200"),
            "post-panic request: {status} {resp}"
        );
        let got: PredictResponse = serde_json::from_str(&resp).unwrap();
        let oracle_engine = Engine::from_json(&json, &serve_cfg()).unwrap();
        let parsed: PredictBody = serde_json::from_str(&body).unwrap();
        let oracle = api::predict_batch(
            &oracle_engine.model,
            &oracle_engine.qm,
            &parsed.requests,
            serve_cfg().window,
        )
        .unwrap();
        for (g, o) in got.predictions.iter().zip(&oracle.predictions) {
            assert_eq!(g.score.to_bits(), o.score.to_bits());
        }

        // The restart left its mark on /metrics.
        let (_, metrics) = http_request(port, "GET", "/metrics", "").unwrap();
        assert!(
            metrics.contains("rckt_serve_shard_0_restarts_total"),
            "{metrics}"
        );
        assert!(
            metrics.contains("rckt_serve_worker_panics_total"),
            "{metrics}"
        );

        server.stop();
    }
}
