//! Model-quality layer for the server: couples the streaming
//! [`QualityMonitor`] with an append-only quality log under a single
//! mutex, so the log's line order is exactly the monitor's ingestion
//! order. That makes `rckt monitor --replay <log>` deterministic: a
//! fresh monitor fed the logged stream reproduces every live
//! `rckt_quality_*` gauge bit-for-bit.
//!
//! Ingested events:
//! * every `/predict` response item → [`QualityEvent::Score`] (score
//!   distribution quantiles + PSI drift vs the model's embedded
//!   training-time reference histogram);
//! * every `/feedback` item → [`QualityEvent::Feedback`] (rolling
//!   AUC/ECE);
//! * every `/explain` record → [`QualityEvent::Influence`] via
//!   [`influence_event`] (correct-vs-incorrect influence mass ratio,
//!   entropy, sparsity of the |Δ| distribution).
//!
//! After each ingest the monitor's gauges are published to the global
//! `rckt-obs` registry (scraped at `GET /metrics`) and any
//! threshold-crossing [`Alert`]s become `quality.alert` events in the
//! structured log.

use rckt::InfluenceRecord;
use rckt_obs::monitor::encode_reference;
use rckt_obs::{event, gauge, Level, MonitorConfig, QualityEvent, QualityMonitor};
use std::fs::File;
use std::io::Write as _;
use std::sync::Mutex;

struct Inner {
    monitor: QualityMonitor,
    log: Option<File>,
    events: u64,
    alerts: u64,
}

/// The server's quality monitor + optional quality log. One per
/// [`crate::Engine`]; the exported gauges live in the process-global
/// metrics registry, so run one engine per process (as `rckt serve`
/// does) for unambiguous `/metrics` output.
pub struct Quality {
    inner: Mutex<Inner>,
}

impl Quality {
    /// Build the layer. `reference` is the model's training-time score
    /// histogram (enables PSI drift); `log_path` enables the replayable
    /// quality log, which starts with the reference line when one is
    /// installed.
    pub fn new(reference: Option<&[u64]>, log_path: Option<&str>) -> std::io::Result<Quality> {
        let mut monitor = QualityMonitor::new(MonitorConfig::default());
        if let Some(counts) = reference {
            monitor.set_reference(counts);
        }
        let log = match log_path {
            Some(path) => {
                let mut f = File::create(path)?;
                if monitor.has_reference() {
                    // Written only when accepted by the monitor, so the
                    // replay installs exactly the same reference.
                    writeln!(f, "{}", encode_reference(reference.unwrap_or(&[])))?;
                }
                Some(f)
            }
            None => None,
        };
        Ok(Quality {
            inner: Mutex::new(Inner {
                monitor,
                log,
                events: 0,
                alerts: 0,
            }),
        })
    }

    /// Ingest one event: log line, monitor update, gauge publication,
    /// alert events — all in ingestion order.
    pub fn observe(&self, ev: QualityEvent) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = &mut g.log {
            let _ = writeln!(f, "{}", ev.encode());
        }
        let alerts = g.monitor.ingest(&ev);
        g.events += 1;
        g.alerts += alerts.len() as u64;
        for (name, v) in g.monitor.gauges() {
            gauge(name).set(v);
        }
        drop(g);
        if alerts.is_empty() {
            return;
        }
        // Tag alerts with the request that tripped them when one is in
        // scope (observe runs on the connection-handler thread).
        let rid = crate::current_request_id();
        for a in alerts {
            let mut fields: Vec<(&str, rckt_obs::Value)> = vec![
                ("alert", a.name.into()),
                ("value", a.value.into()),
                ("threshold", a.threshold.into()),
            ];
            if let Some(id) = &rid {
                fields.push(("request_id", id.as_str().into()));
            }
            event(Level::Info, "quality.alert", &fields);
        }
    }

    /// Lifetime ingestion totals `(events, alerts)` for postmortem
    /// bundles.
    pub fn totals(&self) -> (u64, u64) {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (g.events, g.alerts)
    }

    /// The monitor's current quality report — the same lines a replay of
    /// the quality log prints.
    pub fn report(&self) -> String {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .monitor
            .render_report()
    }
}

/// Distill one influence record into the monitor's health stats: the
/// |Δ| masses of correct and incorrect responses (the paper's ante-hoc
/// interpretable signal), normalized Shannon entropy of the |Δ|
/// distribution over past responses, and the fraction of responses
/// whose |Δ| is below 1% of the total mass (sparsity).
pub fn influence_event(rec: &InfluenceRecord) -> QualityEvent {
    let mags: Vec<f64> = rec
        .influences
        .iter()
        .map(|&(_, _, d)| f64::from(d).abs())
        .collect();
    let total: f64 = mags.iter().sum();
    let n = mags.len();
    let entropy = if n <= 1 || total <= 0.0 {
        0.0
    } else {
        let h: f64 = mags
            .iter()
            .filter(|&&m| m > 0.0)
            .map(|&m| {
                let p = m / total;
                -p * p.ln()
            })
            .sum();
        h / (n as f64).ln()
    };
    let sparsity = if n == 0 || total <= 0.0 {
        0.0
    } else {
        mags.iter().filter(|&&m| m < 0.01 * total).count() as f64 / n as f64
    };
    QualityEvent::Influence {
        correct_mass: f64::from(rec.total_correct).abs(),
        incorrect_mass: f64::from(rec.total_incorrect).abs(),
        entropy,
        sparsity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt_obs::monitor::decode_reference;

    fn record(influences: Vec<(usize, bool, f32)>) -> InfluenceRecord {
        let total_correct: f32 = influences.iter().filter(|i| i.1).map(|i| i.2).sum();
        let total_incorrect: f32 = influences.iter().filter(|i| !i.1).map(|i| i.2).sum();
        InfluenceRecord {
            target: influences.len(),
            influences,
            total_correct,
            total_incorrect,
            score: 0.5,
            label: true,
        }
    }

    #[test]
    fn influence_event_uniform_mass_has_full_entropy() {
        let rec = record(vec![(0, true, 0.25), (1, false, 0.25), (2, true, 0.25)]);
        match influence_event(&rec) {
            QualityEvent::Influence {
                correct_mass,
                incorrect_mass,
                entropy,
                sparsity,
            } => {
                assert!((correct_mass - 0.5).abs() < 1e-9);
                assert!((incorrect_mass - 0.25).abs() < 1e-9);
                assert!((entropy - 1.0).abs() < 1e-9, "uniform |Δ| → entropy 1");
                assert_eq!(sparsity, 0.0);
            }
            other => panic!("expected influence event, got {other:?}"),
        }
    }

    #[test]
    fn influence_event_concentrated_mass_is_sparse_low_entropy() {
        let mut infl = vec![(0usize, true, 1.0f32)];
        for i in 1..10 {
            infl.push((i, false, 1e-6));
        }
        match influence_event(&record(infl)) {
            QualityEvent::Influence {
                entropy, sparsity, ..
            } => {
                assert!(
                    entropy < 0.1,
                    "one dominant response → low entropy: {entropy}"
                );
                assert!(
                    (sparsity - 0.9).abs() < 1e-9,
                    "9 of 10 below 1%: {sparsity}"
                );
            }
            other => panic!("expected influence event, got {other:?}"),
        }
    }

    #[test]
    fn influence_event_degenerate_records_are_finite() {
        for rec in [record(vec![]), record(vec![(0, true, 0.0)])] {
            match influence_event(&rec) {
                QualityEvent::Influence {
                    correct_mass,
                    incorrect_mass,
                    entropy,
                    sparsity,
                } => {
                    for v in [correct_mass, incorrect_mass, entropy, sparsity] {
                        assert!(v.is_finite());
                    }
                }
                other => panic!("expected influence event, got {other:?}"),
            }
        }
    }

    #[test]
    fn quality_log_records_reference_then_events_in_order() {
        let dir = std::env::temp_dir().join(format!("rckt-quality-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quality.csv");
        let counts = {
            let mut c = [0u64; rckt_obs::SCORE_BINS];
            c[4] = 7;
            c
        };
        let q = Quality::new(Some(&counts), path.to_str()).unwrap();
        q.observe(QualityEvent::Score(0.5));
        q.observe(QualityEvent::Feedback {
            score: 0.5,
            label: true,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(decode_reference(lines[0]), Some(counts.to_vec()));
        assert_eq!(lines[1], "predict,0.5");
        assert_eq!(lines[2], "feedback,0.5,1");
        assert!(q.report().contains("rckt_quality_auc "));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
