//! Warm-path prediction: answer an append-one `/predict` from a cached
//! [`IncrementalState`] instead of a full counterfactual fan-out.
//!
//! Classification of an incoming request against the student's resident
//! state:
//!
//! * **Append** — the request history extends the state's history: append
//!   only the new suffix (usually one response) and read the running
//!   score. This is the hot path live sessions hit on every step.
//! * **Replay** — the request history is a strict prefix of the state's
//!   history (a retried or re-ordered earlier step): re-fold the cached
//!   per-position contributions with [`IncrementalState::score_at`]
//!   without touching the live state, so a replay never destroys warm
//!   progress.
//! * **Rebuild** — no resident state (cold), or the history was edited
//!   mid-stream (non-append mutation): fall back to building the state
//!   from scratch. Still incremental machinery, but O(history) work.
//!
//! Accuracy contract (see `docs/performance.md`): for forward-only
//! encoders every classification returns scores **byte-identical** to the
//! exact solo path (`api::predict_batch` with one request) under the same
//! process-wide kernel variant. The influence score folds only context
//! probabilities at positions *before* the target, so the target question
//! participates in validation but not in the arithmetic — which is what
//! makes the cached contributions reusable across targets.

use crate::api::{self, ApiError, HistoryItem, PredictRequest, PredictResponseItem};
use crate::batcher::Engine;
use crate::cache::SessionStore;
use rckt::IncrementalState;

/// How the warm path answered one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmKind {
    /// Resident state extended by the request's new suffix.
    Append,
    /// Earlier step re-asked; answered from cached contributions.
    Replay,
    /// No resident state for this student — built from scratch.
    ColdBuild,
    /// Resident state contradicted the request history (edited
    /// mid-stream) — discarded and rebuilt.
    DivergedRebuild,
}

impl WarmKind {
    /// Stable lowercase label used in flight-ring request records and
    /// the postmortem report.
    pub fn as_str(self) -> &'static str {
        match self {
            WarmKind::Append => "append",
            WarmKind::Replay => "replay",
            WarmKind::ColdBuild => "cold_build",
            WarmKind::DivergedRebuild => "diverged_rebuild",
        }
    }
}

/// Per-request warm-path accounting, surfaced as serve metrics.
#[derive(Clone, Copy, Debug)]
pub struct WarmStats {
    pub kind: WarmKind,
    /// History positions the encoder actually advanced through (0 for a
    /// replay, 1 for a steady-state append, `history.len()` for a
    /// rebuild).
    pub positions_recomputed: usize,
}

impl WarmStats {
    /// True when the request was answered without a full-history rebuild.
    pub fn is_warm(&self) -> bool {
        matches!(self.kind, WarmKind::Append | WarmKind::Replay)
    }
}

fn matches_prefix(state: &IncrementalState, history: &[HistoryItem], n: usize) -> bool {
    state.questions()[..n]
        .iter()
        .zip(&state.correct_flags()[..n])
        .zip(&history[..n])
        .all(|((&q, &c), h)| q == h.question && c == h.correct)
}

/// Answer one predict request through the session-state store.
///
/// `sessions` is passed explicitly (rather than always reading
/// `engine.sessions`) so the offline replay twin (`rckt replay-session`)
/// can run the *same function* against a local store and reproduce served
/// bytes by construction.
pub fn predict_one(
    engine: &Engine,
    sessions: &SessionStore,
    req: &PredictRequest,
) -> Result<(PredictResponseItem, WarmStats), ApiError> {
    // Same validation (and therefore same error bytes) as the exact path.
    api::predict_window(req, &engine.model, &engine.qm, engine.window)?;

    let hist = &req.history;
    let (resident, kind) = match sessions.take(req.student) {
        Some(st) if st.len() <= hist.len() && matches_prefix(&st, hist, st.len()) => {
            (Some(st), WarmKind::Append)
        }
        Some(st) if hist.len() < st.len() && matches_prefix(&st, hist, hist.len()) => {
            let score = st
                .score_at(hist.len())
                .expect("prefix length is within the resident state");
            sessions.put(req.student, st);
            return Ok((
                PredictResponseItem {
                    student: req.student,
                    score,
                },
                WarmStats {
                    kind: WarmKind::Replay,
                    positions_recomputed: 0,
                },
            ));
        }
        Some(_) => (None, WarmKind::DivergedRebuild),
        None => (None, WarmKind::ColdBuild),
    };

    let mut st = match resident {
        Some(st) => st,
        None => IncrementalState::new(&engine.model, engine.window).ok_or_else(|| {
            ApiError::Internal("model does not support incremental inference".to_string())
        })?,
    };
    let start = st.len();
    let suffix: Vec<(u32, bool)> = hist[start..]
        .iter()
        .map(|h| (h.question, h.correct))
        .collect();
    if let Err(e) = st.append_responses(&engine.model, &engine.qm, &suffix) {
        // `append_responses` validates before mutating, so the state is
        // still the pre-request one — keep it resident.
        sessions.put(req.student, st);
        return Err(ApiError::BadRequest(e.to_string()));
    }
    let score = st.score();
    sessions.put(req.student, st);
    Ok((
        PredictResponseItem {
            student: req.student,
            score,
        },
        WarmStats {
            kind,
            positions_recomputed: suffix.len(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SessionCache;
    use rckt::{Backbone, Rckt, RcktConfig};
    use rckt_data::SyntheticSpec;

    fn engine(window: usize, store_capacity: usize) -> Engine {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                unidirectional: true,
                ..Default::default()
            },
        );
        Engine {
            model,
            qm: ds.q_matrix,
            window,
            cache: SessionCache::new(64),
            sessions: SessionStore::new(store_capacity),
            model_hash: 0xfeed,
            quality: crate::quality::Quality::new(None, None).unwrap(),
        }
    }

    fn req(student: u32, hist: &[(u32, bool)], target_question: u32) -> PredictRequest {
        PredictRequest {
            student,
            history: hist
                .iter()
                .map(|&(question, correct)| HistoryItem { question, correct })
                .collect(),
            target_question,
        }
    }

    fn session(n: usize) -> Vec<(u32, bool)> {
        (0..n).map(|i| ((i as u32 % 5) + 1, i % 3 != 0)).collect()
    }

    fn exact_solo(eng: &Engine, r: &PredictRequest) -> f32 {
        api::predict_batch(&eng.model, &eng.qm, std::slice::from_ref(r), eng.window)
            .unwrap()
            .predictions[0]
            .score
    }

    #[test]
    fn warm_session_matches_exact_solo_bitwise_at_every_step() {
        let eng = engine(16, 8);
        let hist = session(12);
        for n in 0..hist.len() {
            let r = req(3, &hist[..n], hist[n].0);
            let (item, stats) = predict_one(&eng, &eng.sessions, &r).unwrap();
            assert_eq!(
                item.score.to_bits(),
                exact_solo(&eng, &r).to_bits(),
                "step {n} diverged from the exact path"
            );
            if n == 0 {
                assert_eq!(stats.kind, WarmKind::ColdBuild);
            } else {
                assert_eq!(stats.kind, WarmKind::Append, "step {n}");
                assert_eq!(stats.positions_recomputed, 1, "step {n}");
            }
        }
    }

    #[test]
    fn replay_of_earlier_step_is_bitwise_stable_and_preserves_state() {
        let eng = engine(16, 8);
        let hist = session(9);
        let mut served = Vec::new();
        for n in 0..hist.len() {
            let r = req(1, &hist[..n], hist[n].0);
            served.push(predict_one(&eng, &eng.sessions, &r).unwrap().0.score);
        }
        // Re-ask step 3 (its history is a strict prefix of the resident
        // state): same bytes, no state mutation.
        let r3 = req(1, &hist[..3], hist[3].0);
        let (item, stats) = predict_one(&eng, &eng.sessions, &r3).unwrap();
        assert_eq!(stats.kind, WarmKind::Replay);
        assert_eq!(item.score.to_bits(), served[3].to_bits());
        // The live session continues warm from where it left off.
        let next = req(1, &hist, 2);
        let (item, stats) = predict_one(&eng, &eng.sessions, &next).unwrap();
        assert_eq!(stats.kind, WarmKind::Append);
        assert_eq!(item.score.to_bits(), exact_solo(&eng, &next).to_bits());
    }

    #[test]
    fn edited_history_falls_back_to_rebuild_then_rewarms() {
        let eng = engine(16, 8);
        let hist = session(8);
        for n in 0..hist.len() {
            let r = req(2, &hist[..n], hist[n].0);
            predict_one(&eng, &eng.sessions, &r).unwrap();
        }
        // Non-append mutation: flip one past answer. The resident state
        // contradicts the request and must be discarded, not trusted.
        let mut edited = hist.clone();
        edited[2].1 = !edited[2].1;
        let r = req(2, &edited[..6], edited[6].0);
        let (item, stats) = predict_one(&eng, &eng.sessions, &r).unwrap();
        assert_eq!(stats.kind, WarmKind::DivergedRebuild);
        assert_eq!(stats.positions_recomputed, 6);
        assert_eq!(item.score.to_bits(), exact_solo(&eng, &r).to_bits());
        // And the rebuilt state serves the edited stream warm again.
        let r = req(2, &edited[..7], edited[7].0);
        let (item, stats) = predict_one(&eng, &eng.sessions, &r).unwrap();
        assert_eq!(stats.kind, WarmKind::Append);
        assert_eq!(item.score.to_bits(), exact_solo(&eng, &r).to_bits());
    }

    #[test]
    fn session_store_evicts_lru_under_append_traffic() {
        let eng = engine(16, 2);
        let hist = session(4);
        for student in [10u32, 11, 12] {
            for n in 0..3 {
                let r = req(student, &hist[..n], hist[n].0);
                predict_one(&eng, &eng.sessions, &r).unwrap();
            }
        }
        assert_eq!(eng.sessions.len(), 2, "store capacity is enforced");
        let resident = eng.sessions.resident_students();
        assert!(
            !resident.contains(&10),
            "oldest session evicted: {resident:?}"
        );
        // The evicted student comes back cold but still bit-exact.
        let r = req(10, &hist[..3], hist[3].0);
        let (item, stats) = predict_one(&eng, &eng.sessions, &r).unwrap();
        assert_eq!(stats.kind, WarmKind::ColdBuild);
        assert_eq!(item.score.to_bits(), exact_solo(&eng, &r).to_bits());
    }

    #[test]
    fn validation_errors_match_the_exact_path() {
        let eng = engine(16, 8);
        let bad = req(0, &[(999_999, true)], 1);
        let warm_err = predict_one(&eng, &eng.sessions, &bad).unwrap_err();
        let exact_err =
            api::predict_batch(&eng.model, &eng.qm, std::slice::from_ref(&bad), eng.window)
                .unwrap_err();
        assert_eq!(warm_err, exact_err, "error bytes must match the exact path");
        assert!(eng.sessions.is_empty(), "rejected request leaves no state");
    }
}
