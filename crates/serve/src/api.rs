//! Request/response schemas for `/predict` and `/explain`, plus the
//! request→window conversion and the offline batch entry points the CLI
//! (`rckt predict`) shares with the server worker.
//!
//! Bit-identity contract: every path — served or offline — pads windows to
//! the same configured length and runs the same `Rckt` entry points, and
//! the blocked kernels compute each batch row independently of its
//! neighbours, so a served response is byte-identical to an offline run
//! over the same requests against the same model file.

use rckt::{InfluenceRecord, Rckt};
use rckt_data::{Batch, QMatrix, Window};
use serde::{Deserialize, Serialize};

/// Default pad length for serving windows — the paper's window length.
pub const DEFAULT_SERVE_WINDOW: usize = rckt_data::preprocess::DEFAULT_WINDOW_LEN;

/// One past response in a student's history.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryItem {
    pub question: u32,
    pub correct: bool,
}

/// Score the probability that `student` answers `target_question`
/// correctly given their response history.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictRequest {
    #[serde(default)]
    pub student: u32,
    pub history: Vec<HistoryItem>,
    pub target_question: u32,
}

/// Explain the influence attribution for one response in a student's
/// history (default: the last one).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplainRequest {
    #[serde(default)]
    pub student: u32,
    pub history: Vec<HistoryItem>,
    /// Index within `history` to explain; defaults to the last response.
    #[serde(default)]
    pub target: Option<usize>,
}

/// `POST /predict` body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictBody {
    pub requests: Vec<PredictRequest>,
    /// Per-request deadline; a request still queued past it gets a 504.
    /// `None`/0 falls back to the server's configured default.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

/// `POST /explain` body.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExplainBody {
    pub requests: Vec<ExplainRequest>,
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictResponseItem {
    pub student: u32,
    /// Normalized influence margin in `(0, 1)`; ≥ ½ predicts correct.
    pub score: f32,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictResponse {
    pub predictions: Vec<PredictResponseItem>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExplainResponseItem {
    pub student: u32,
    #[serde(flatten)]
    pub record: InfluenceRecord,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExplainResponse {
    pub explanations: Vec<ExplainResponseItem>,
}

/// One labeled outcome: the ground truth for an earlier served
/// prediction has arrived (the student answered).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeedbackEvent {
    #[serde(default)]
    pub student: u32,
    /// The score the model served for this interaction, echoed back.
    pub score: f64,
    /// Whether the student actually answered correctly.
    pub correct: bool,
}

/// `POST /feedback` body — feeds the rolling AUC/ECE quality monitors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeedbackBody {
    pub events: Vec<FeedbackEvent>,
}

/// `POST /feedback` response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeedbackResponse {
    pub accepted: usize,
}

/// Why a request was not answered with a 200.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// Invalid input (unknown question id, over-long history, …) → 400.
    BadRequest(String),
    /// Bounded queue is full → 503 + `Retry-After`.
    Overloaded,
    /// Server is draining for shutdown → 503 + `Retry-After`.
    Draining,
    /// The request sat in the queue past its deadline → 504.
    DeadlineExceeded,
    /// Worker-side failure → 500.
    Internal(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::BadRequest(m) => write!(f, "bad request: {m}"),
            ApiError::Overloaded => write!(f, "server overloaded, retry later"),
            ApiError::Draining => write!(f, "server is draining for shutdown"),
            ApiError::DeadlineExceeded => write!(f, "request deadline exceeded while queued"),
            ApiError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

fn check_questions<'a>(
    ids: impl Iterator<Item = &'a u32>,
    model: &Rckt,
    qm: &QMatrix,
) -> Result<(), ApiError> {
    let known = model.num_questions().min(qm.num_questions());
    for &q in ids {
        if q as usize >= known {
            return Err(ApiError::BadRequest(format!(
                "question id {q} is out of range (model knows {known} questions)"
            )));
        }
    }
    Ok(())
}

/// Validate a predict request and build its padded window + target index.
///
/// The window is padded to the fixed `window` length shared by the server
/// and the offline CLI so that batch geometry — and therefore every bit of
/// the result — never depends on which requests happen to be fused.
pub fn predict_window(
    req: &PredictRequest,
    model: &Rckt,
    qm: &QMatrix,
    window: usize,
) -> Result<(Window, usize), ApiError> {
    if req.history.len() + 1 > window {
        return Err(ApiError::BadRequest(format!(
            "history of {} responses exceeds the serve window ({window} incl. the target); send the most recent {} responses",
            req.history.len(),
            window - 1
        )));
    }
    check_questions(
        req.history
            .iter()
            .map(|h| &h.question)
            .chain(std::iter::once(&req.target_question)),
        model,
        qm,
    )?;
    let mut questions = vec![0u32; window];
    let mut correct = vec![0u8; window];
    for (t, h) in req.history.iter().enumerate() {
        questions[t] = h.question;
        correct[t] = h.correct as u8;
    }
    let target = req.history.len();
    // The target's own correctness is unknown (that is the prediction);
    // the score never reads it, only the record's ground-truth label does.
    questions[target] = req.target_question;
    let w = Window {
        student: req.student,
        questions,
        correct,
        len: target + 1,
    };
    Ok((w, target))
}

/// Validate an explain request and build its padded window + target index.
pub fn explain_window(
    req: &ExplainRequest,
    model: &Rckt,
    qm: &QMatrix,
    window: usize,
) -> Result<(Window, usize), ApiError> {
    if req.history.is_empty() {
        return Err(ApiError::BadRequest(
            "history must contain at least one response to explain".to_string(),
        ));
    }
    if req.history.len() > window {
        return Err(ApiError::BadRequest(format!(
            "history of {} responses exceeds the serve window ({window}); send the most recent {window} responses",
            req.history.len()
        )));
    }
    let target = req.target.unwrap_or(req.history.len() - 1);
    if target >= req.history.len() {
        return Err(ApiError::BadRequest(format!(
            "target index {target} is outside the {}-response history",
            req.history.len()
        )));
    }
    check_questions(req.history.iter().map(|h| &h.question), model, qm)?;
    let mut questions = vec![0u32; window];
    let mut correct = vec![0u8; window];
    for (t, h) in req.history.iter().enumerate() {
        questions[t] = h.question;
        correct[t] = h.correct as u8;
    }
    let w = Window {
        student: req.student,
        questions,
        correct,
        len: req.history.len(),
    };
    Ok((w, target))
}

/// Score a set of predict requests in one fused `predict_targets` call —
/// the offline path behind `rckt predict`, and the oracle the CI smoke
/// job compares served responses against.
pub fn predict_batch(
    model: &Rckt,
    qm: &QMatrix,
    reqs: &[PredictRequest],
    window: usize,
) -> Result<PredictResponse, ApiError> {
    if reqs.is_empty() {
        return Ok(PredictResponse {
            predictions: Vec::new(),
        });
    }
    let mut ws = Vec::with_capacity(reqs.len());
    let mut targets = Vec::with_capacity(reqs.len());
    for r in reqs {
        let (w, t) = predict_window(r, model, qm, window)?;
        ws.push(w);
        targets.push(t);
    }
    let refs: Vec<&Window> = ws.iter().collect();
    let batch = Batch::from_windows(&refs, qm);
    let preds = model
        .predict_targets_checked(&batch, &targets)
        .map_err(|e| ApiError::BadRequest(e.to_string()))?;
    Ok(PredictResponse {
        predictions: reqs
            .iter()
            .zip(&preds)
            .map(|(r, p)| PredictResponseItem {
                student: r.student,
                score: p.prob,
            })
            .collect(),
    })
}

/// Explain a set of requests in one fused `influences_exact` call — the
/// offline path behind `rckt predict --explain`.
pub fn explain_batch(
    model: &Rckt,
    qm: &QMatrix,
    reqs: &[ExplainRequest],
    window: usize,
) -> Result<ExplainResponse, ApiError> {
    if reqs.is_empty() {
        return Ok(ExplainResponse {
            explanations: Vec::new(),
        });
    }
    let mut ws = Vec::with_capacity(reqs.len());
    let mut targets = Vec::with_capacity(reqs.len());
    for r in reqs {
        let (w, t) = explain_window(r, model, qm, window)?;
        ws.push(w);
        targets.push(t);
    }
    let refs: Vec<&Window> = ws.iter().collect();
    let batch = Batch::from_windows(&refs, qm);
    let recs = model
        .influences_exact_checked(&batch, &targets)
        .map_err(|e| ApiError::BadRequest(e.to_string()))?;
    Ok(ExplainResponse {
        explanations: reqs
            .iter()
            .zip(recs)
            .map(|(r, record)| ExplainResponseItem {
                student: r.student,
                record,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rckt::{Backbone, RcktConfig};
    use rckt_data::SyntheticSpec;

    fn setup() -> (Rckt, QMatrix) {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let m = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                ..Default::default()
            },
        );
        (m, ds.q_matrix)
    }

    fn hist(pairs: &[(u32, bool)]) -> Vec<HistoryItem> {
        pairs
            .iter()
            .map(|&(question, correct)| HistoryItem { question, correct })
            .collect()
    }

    #[test]
    fn predict_window_layout() {
        let (m, qm) = setup();
        let req = PredictRequest {
            student: 7,
            history: hist(&[(1, true), (2, false)]),
            target_question: 3,
        };
        let (w, target) = predict_window(&req, &m, &qm, 10).unwrap();
        assert_eq!(target, 2);
        assert_eq!(w.len, 3);
        assert_eq!(w.questions[..4], [1, 2, 3, 0]);
        assert_eq!(w.correct[..3], [1, 0, 0]);
        assert_eq!(w.questions.len(), 10);
    }

    #[test]
    fn predict_rejects_unknown_question_and_long_history() {
        let (m, qm) = setup();
        let bad_q = PredictRequest {
            student: 0,
            history: hist(&[(999_999, true)]),
            target_question: 1,
        };
        assert!(matches!(
            predict_window(&bad_q, &m, &qm, 10),
            Err(ApiError::BadRequest(m)) if m.contains("999999")
        ));
        let long = PredictRequest {
            student: 0,
            history: hist(&[(1, true); 10]),
            target_question: 1,
        };
        assert!(matches!(
            predict_window(&long, &m, &qm, 10),
            Err(ApiError::BadRequest(m)) if m.contains("exceeds")
        ));
    }

    #[test]
    fn explain_window_defaults_to_last_and_checks_target() {
        let (m, qm) = setup();
        let req = ExplainRequest {
            student: 1,
            history: hist(&[(1, true), (2, false), (3, true)]),
            target: None,
        };
        let (w, target) = explain_window(&req, &m, &qm, 10).unwrap();
        assert_eq!(target, 2);
        assert_eq!(w.len, 3);
        let out = ExplainRequest {
            target: Some(3),
            ..req.clone()
        };
        assert!(matches!(
            explain_window(&out, &m, &qm, 10),
            Err(ApiError::BadRequest(_))
        ));
        let empty = ExplainRequest {
            student: 0,
            history: vec![],
            target: None,
        };
        assert!(matches!(
            explain_window(&empty, &m, &qm, 10),
            Err(ApiError::BadRequest(_))
        ));
    }

    #[test]
    fn predict_batch_matches_direct_model_call_bitwise() {
        let (m, qm) = setup();
        let reqs = vec![
            PredictRequest {
                student: 0,
                history: hist(&[(1, true), (4, false), (2, true)]),
                target_question: 5,
            },
            PredictRequest {
                student: 1,
                history: hist(&[(3, false)]),
                target_question: 2,
            },
        ];
        let resp = predict_batch(&m, &qm, &reqs, 16).unwrap();
        assert_eq!(resp.predictions.len(), 2);
        // Oracle: hand-built windows through the raw model API.
        let mut ws = Vec::new();
        let mut targets = Vec::new();
        for r in &reqs {
            let (w, t) = predict_window(r, &m, &qm, 16).unwrap();
            ws.push(w);
            targets.push(t);
        }
        let refs: Vec<&Window> = ws.iter().collect();
        let batch = Batch::from_windows(&refs, &qm);
        let direct = m.predict_targets(&batch, &targets);
        for (got, want) in resp.predictions.iter().zip(&direct) {
            assert_eq!(got.score.to_bits(), want.prob.to_bits());
        }
        // And each request solo gives the same bits as the fused batch.
        for (i, r) in reqs.iter().enumerate() {
            let solo = predict_batch(&m, &qm, std::slice::from_ref(r), 16).unwrap();
            assert_eq!(
                solo.predictions[0].score.to_bits(),
                resp.predictions[i].score.to_bits()
            );
        }
    }

    #[test]
    fn explain_batch_returns_per_response_influences() {
        let (m, qm) = setup();
        let reqs = vec![ExplainRequest {
            student: 4,
            history: hist(&[(1, true), (2, false), (3, true), (4, true)]),
            target: None,
        }];
        let resp = explain_batch(&m, &qm, &reqs, 16).unwrap();
        let rec = &resp.explanations[0].record;
        assert_eq!(rec.target, 3);
        assert_eq!(rec.influences.len(), 3);
        assert!(rec.label, "fourth response was correct");
        // JSON wire shape: flattened record next to the student id.
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"student\":4"));
        assert!(json.contains("\"influences\""));
        assert!(json.contains("\"score\""));
    }

    #[test]
    fn schemas_roundtrip_and_default_optionals() {
        let body: PredictBody = serde_json::from_str(
            "{\"requests\":[{\"history\":[{\"question\":1,\"correct\":true}],\"target_question\":2}]}",
        )
        .unwrap();
        assert_eq!(body.requests[0].student, 0, "student defaults to 0");
        assert_eq!(body.deadline_ms, None);
        let body: ExplainBody = serde_json::from_str(
            "{\"requests\":[{\"student\":3,\"history\":[{\"question\":1,\"correct\":false}]}],\"deadline_ms\":50}",
        )
        .unwrap();
        assert_eq!(body.deadline_ms, Some(50));
        assert_eq!(body.requests[0].target, None);
    }
}
