//! Postmortem bundles: one self-contained JSON artifact holding
//! everything needed to reconstruct an incident after the process is
//! gone — the run manifest, the flight-recorder rings, a metrics
//! snapshot, the quality-monitor state, and the SLO engine state.
//!
//! Bundles are written by three triggers sharing one code path:
//! a panic (via the installed hook), `POST /debug/snapshot`, and
//! automatically when an SLO burn-rate alert fires. The offline twin
//! `rckt postmortem <bundle.json>` renders [`render_report`] from the
//! same bytes — the replay-twin discipline `rckt monitor --replay`
//! established for quality logs.

use rckt_obs::json::{self, JsonValue, Obj};
use rckt_obs::{metrics_snapshot, FlightRecorder, SloEngine};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{SystemTime, UNIX_EPOCH};

/// Everything the bundle writer needs, shared with the panic hook.
pub struct PostmortemCtx {
    pub flight: Arc<FlightRecorder>,
    pub slo: Arc<Mutex<SloEngine>>,
    pub engine: Arc<crate::Engine>,
    /// The server's run manifest, captured once at startup.
    pub manifest_json: String,
    /// Bundle output directory (`--postmortem-dir`); `None` disables
    /// writing (snapshots are still served over HTTP).
    pub dir: Option<String>,
    /// Bundles written so far, for unique file names.
    written: AtomicU64,
}

impl PostmortemCtx {
    pub fn new(
        flight: Arc<FlightRecorder>,
        slo: Arc<Mutex<SloEngine>>,
        engine: Arc<crate::Engine>,
        manifest_json: String,
        dir: Option<String>,
    ) -> PostmortemCtx {
        PostmortemCtx {
            flight,
            slo,
            engine,
            manifest_json,
            dir,
            written: AtomicU64::new(0),
        }
    }

    pub fn bundles_written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }
}

fn unix_ts() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Assemble the full bundle as one JSON object.
pub fn assemble_bundle(ctx: &PostmortemCtx, reason: &str) -> String {
    let (q_events, q_alerts) = ctx.engine.quality.totals();
    let mut quality = Obj::new();
    quality
        .str("report", &ctx.engine.quality.report())
        .u64("events", q_events)
        .u64("alerts", q_alerts);
    let slo_json = ctx
        .slo
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .snapshot_json();
    let mut o = Obj::new();
    o.str("bundle", "rckt-postmortem/v1")
        .str("reason", reason)
        .f64("ts", unix_ts())
        .raw("manifest", &ctx.manifest_json)
        .raw("flight", &ctx.flight.snapshot_json())
        .raw("metrics", &metrics_snapshot().to_json())
        .raw("quality", &quality.finish())
        .raw("slo", &slo_json);
    o.finish()
}

/// Assemble and, when a directory is configured, write the bundle to
/// `<dir>/postmortem-<pid>-<n>.json`. Returns `(bundle, written_path)`.
pub fn write_bundle(ctx: &PostmortemCtx, reason: &str) -> (String, Option<String>) {
    let bundle = assemble_bundle(ctx, reason);
    let path = ctx.dir.as_ref().and_then(|dir| {
        let n = ctx.written.fetch_add(1, Ordering::Relaxed);
        let path = format!("{dir}/postmortem-{}-{n}.json", std::process::id());
        match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &bundle)) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("rckt-serve: cannot write postmortem bundle to {path}: {e}");
                None
            }
        }
    });
    if let Some(p) = &path {
        rckt_obs::event(
            rckt_obs::Level::Info,
            "postmortem.written",
            &[("reason", reason.into()), ("path", p.as_str().into())],
        );
    }
    (bundle, path)
}

/// The context the panic hook reads — last started server wins, and a
/// stopping server clears its own entry so it never outlives the engine
/// it points at.
static PANIC_CTX: Mutex<Option<Arc<PostmortemCtx>>> = Mutex::new(None);
static HOOK: Once = Once::new();

fn panic_slot() -> std::sync::MutexGuard<'static, Option<Arc<PostmortemCtx>>> {
    PANIC_CTX.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm the panic hook for `ctx`. The hook itself is installed once per
/// process (chained in front of the previous hook) and reads whatever
/// context is current when a panic happens, so a crashed worker thread
/// leaves a bundle with the flight ring's final requests in it.
pub fn arm_panic_hook(ctx: Arc<PostmortemCtx>) {
    *panic_slot() = Some(ctx);
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let ctx = panic_slot().clone();
            if let Some(ctx) = ctx {
                let _ = write_bundle(&ctx, "panic");
            }
            prev(info);
        }));
    });
}

/// Disarm the hook if it is currently pointing at `ctx`.
pub fn disarm_panic_hook(ctx: &Arc<PostmortemCtx>) {
    let mut g = panic_slot();
    if g.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, ctx)) {
        *g = None;
    }
}

fn fmt_micros(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1}ms", us / 1e3)
    } else {
        format!("{us:.0}µs")
    }
}

fn num(v: Option<&JsonValue>) -> f64 {
    v.and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn text<'a>(v: Option<&'a JsonValue>) -> &'a str {
    v.and_then(|v| v.as_str()).unwrap_or("-")
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a bad-ratio-over-time sparkline from one objective's bucket
/// series (`[[start_secs, good, bad], …]`), rebinned to at most `width`
/// columns. The scale is burn rate relative to the fast threshold: a
/// full block is burn ≥ 14.4.
fn sparkline(buckets: &[JsonValue], budget: f64, width: usize) -> String {
    if buckets.is_empty() || budget <= 0.0 {
        return String::new();
    }
    let per = buckets.len().div_ceil(width).max(1);
    let mut out = String::new();
    for chunk in buckets.chunks(per) {
        let (mut good, mut bad) = (0.0, 0.0);
        for b in chunk {
            if let Some(row) = b.as_array() {
                good += num(row.get(1));
                bad += num(row.get(2));
            }
        }
        let total = good + bad;
        let burn = if total > 0.0 {
            (bad / total) / budget
        } else {
            0.0
        };
        let level = ((burn / rckt_obs::slo::FAST_BURN) * 7.0).min(7.0) as usize;
        out.push(SPARK[level]);
    }
    out
}

/// The offline twin of a live incident view: render a parsed bundle as
/// a human report — SLO breaches (naming the breached windows), a
/// burn-rate sparkline, error clusters, the slowest requests, and the
/// event timeline.
pub fn render_report(bundle_text: &str) -> Result<String, String> {
    let bundle = json::parse(bundle_text).map_err(|e| format!("not a postmortem bundle: {e}"))?;
    if bundle.get("bundle").and_then(|v| v.as_str()) != Some("rckt-postmortem/v1") {
        return Err("not a postmortem bundle: missing \"bundle\":\"rckt-postmortem/v1\"".into());
    }
    let mut out = String::new();
    let push = |out: &mut String, line: &str| {
        out.push_str(line);
        out.push('\n');
    };

    push(&mut out, "== rckt postmortem ==");
    push(
        &mut out,
        &format!("reason:   {}", text(bundle.get("reason"))),
    );
    push(
        &mut out,
        &format!("captured: unix {:.3}", num(bundle.get("ts"))),
    );
    if let Some(m) = bundle.get("manifest") {
        push(
            &mut out,
            &format!(
                "build:    {} commit {}",
                text(m.get("bin")),
                text(m.get("git_commit"))
            ),
        );
    }

    push(&mut out, "");
    push(&mut out, "== SLO burn rates ==");
    let empty: Vec<JsonValue> = Vec::new();
    let objectives = bundle
        .get("slo")
        .and_then(|s| s.get("objectives"))
        .and_then(|o| o.as_array())
        .unwrap_or(&empty);
    let mut alerts = 0usize;
    for o in objectives {
        let name = text(o.get("name"));
        let target = num(o.get("target"));
        let budget = 1.0 - target;
        push(
            &mut out,
            &format!(
                "{name}: target {:.3}% | burn 5m {:.1} | 1h {:.1} | 6h {:.1}",
                target * 100.0,
                num(o.get("burn_rate_5m")),
                num(o.get("burn_rate_1h")),
                num(o.get("burn_rate_6h")),
            ),
        );
        if let Some(buckets) = o.get("buckets").and_then(|b| b.as_array()) {
            let line = sparkline(buckets, budget, 60);
            if !line.is_empty() {
                push(&mut out, &format!("  burn {line}"));
            }
        }
        if o.get("fast_active") == Some(&JsonValue::Bool(true)) {
            alerts += 1;
            push(
                &mut out,
                &format!(
                    "  ALERT {name}: fast window (5m/1h) burn >= {}",
                    rckt_obs::slo::FAST_BURN
                ),
            );
        }
        if o.get("slow_active") == Some(&JsonValue::Bool(true)) {
            alerts += 1;
            push(
                &mut out,
                &format!(
                    "  ALERT {name}: slow window (6h) burn >= {}",
                    rckt_obs::slo::SLOW_BURN
                ),
            );
        }
    }
    if objectives.is_empty() {
        push(&mut out, "(no objectives in bundle)");
    } else if alerts == 0 {
        push(&mut out, "no active breaches");
    }

    let requests = bundle
        .get("flight")
        .and_then(|f| f.get("requests"))
        .and_then(|r| r.as_array())
        .unwrap_or(&empty);
    push(&mut out, "");
    push(
        &mut out,
        &format!("== requests ({} in ring) ==", requests.len()),
    );

    // Error clusters: non-2xx grouped by (status, path), with the time
    // window the cluster spans — a shed burst shows up as one line.
    let mut clusters: Vec<(u64, String, u64, f64, f64, String)> = Vec::new();
    for r in requests {
        let status = num(r.get("status")) as u64;
        if (200..300).contains(&status) {
            continue;
        }
        let path = text(r.get("path")).to_string();
        let ts = num(r.get("ts"));
        let id = text(r.get("request_id")).to_string();
        match clusters
            .iter_mut()
            .find(|(s, p, ..)| *s == status && *p == path)
        {
            Some((_, _, count, first, last, _)) => {
                *count += 1;
                *first = first.min(ts);
                *last = last.max(ts);
            }
            None => clusters.push((status, path, 1, ts, ts, id)),
        }
    }
    clusters.sort_by(|a, b| b.2.cmp(&a.2));
    if clusters.is_empty() {
        push(&mut out, "no errors in ring");
    } else {
        push(&mut out, "error clusters:");
        for (status, path, count, first, last, sample) in &clusters {
            push(
                &mut out,
                &format!(
                    "  {status} {path} × {count} over {:.1}s (first {first:.3}, last {last:.3}, e.g. {sample})",
                    last - first
                ),
            );
        }
    }

    let mut slowest: Vec<&JsonValue> = requests.iter().collect();
    slowest.sort_by(|a, b| {
        num(b.get("total_micros"))
            .partial_cmp(&num(a.get("total_micros")))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if !slowest.is_empty() {
        push(&mut out, "slowest requests:");
        for r in slowest.iter().take(5) {
            push(
                &mut out,
                &format!(
                    "  {} {} {} {} (queue {}, infer {}, batch {}, warm {}, status {})",
                    fmt_micros(num(r.get("total_micros"))),
                    text(r.get("method")),
                    text(r.get("path")),
                    text(r.get("request_id")),
                    fmt_micros(num(r.get("queue_micros"))),
                    fmt_micros(num(r.get("infer_micros"))),
                    num(r.get("batch")) as u64,
                    text(r.get("warm")),
                    num(r.get("status")) as u64,
                ),
            );
        }
    }

    let events = bundle
        .get("flight")
        .and_then(|f| f.get("events"))
        .and_then(|e| e.as_array())
        .unwrap_or(&empty);
    push(&mut out, "");
    push(
        &mut out,
        &format!(
            "== timeline ({} events in ring, newest last) ==",
            events.len()
        ),
    );
    for ev in events.iter().rev().take(20).rev() {
        let mut line = format!(
            "  {:.3} [{}] {}",
            num(ev.get("ts")),
            text(ev.get("level")),
            text(ev.get("event"))
        );
        if let Some(JsonValue::Object(fields)) = ev.get("fields") {
            for (k, v) in fields {
                let rendered = match v {
                    JsonValue::Str(s) => s.clone(),
                    JsonValue::Num(n) => json::number(*n),
                    JsonValue::Bool(b) => b.to_string(),
                    JsonValue::Null => "null".to_string(),
                    other => format!("{other:?}"),
                };
                line.push_str(&format!(" {k}={rendered}"));
            }
        }
        push(&mut out, &line);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_rejects_non_bundles() {
        assert!(render_report("{not json").is_err());
        assert!(render_report("{\"bundle\":\"something-else\"}").is_err());
        assert!(render_report("{}").is_err());
    }

    #[test]
    fn sparkline_scales_against_the_fast_threshold() {
        let buckets = json::parse("[[0,100,0],[10,100,0],[20,50,50],[30,0,100]]").unwrap();
        let line = sparkline(buckets.as_array().unwrap(), 0.001, 60);
        assert_eq!(line.chars().count(), 4);
        let chars: Vec<char> = line.chars().collect();
        assert_eq!(chars[0], '▁', "healthy bucket at the floor");
        assert_eq!(chars[3], '█', "all-bad bucket saturates");
    }
}
