//! Per-student session caching, two layers:
//!
//! * [`SessionCache`] — an LRU memo from a structured [`SessionKey`]
//!   (model hash, kind, student, history length, content hash) to the
//!   finished outcome. A student re-sending an identical request is
//!   answered from the memo with bit-identical bytes. Because the key is
//!   structured (not an opaque canonical-JSON string), an appended history
//!   *invalidates* the student's now-stale shorter-prefix entries instead
//!   of leaving them to crowd out live sessions until LRU pressure finds
//!   them.
//! * [`SessionStore`] — the warm-path state store: one
//!   [`IncrementalState`] per student id, LRU-evicted, carrying the cached
//!   encoder streams that make an append-one `/predict` recompute a single
//!   position (see `crates/core`'s `incremental` module).
//!
//! Both layers export their occupancy: `serve.session.evictions` /
//! `serve.session.resident` for the memo (rendered by `/metrics` as
//! `rckt_serve_session_evictions_total` and a resident-sessions gauge),
//! `serve.session.state_evictions` / `serve.session.states_resident` /
//! `serve.session.state_bytes` for the warm store, and
//! `serve.session.stale_invalidated` for prefix invalidations.

use crate::api::{ExplainResponseItem, PredictResponseItem};
use crate::batcher::JobRequest;
use crate::lock_recover;
use rckt::IncrementalState;
use rckt_obs::{counter, gauge};
use std::collections::HashMap;
use std::sync::Mutex;

/// A finished, cacheable result for one request.
#[derive(Clone, Debug)]
pub enum Outcome {
    Predict(PredictResponseItem),
    Explain(ExplainResponseItem),
}

/// Which endpoint a memo entry answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KeyKind {
    Predict,
    Explain,
}

/// Structured memo-cache key. Equal requests hash their full content into
/// `content_hash`, while the structured fields let the cache reason about
/// relationships between keys — in particular, `(model_hash, kind,
/// student)` groups one student's entries so an append-one request with a
/// longer history can invalidate the stale shorter ones.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SessionKey {
    pub model_hash: u64,
    pub kind: KeyKind,
    pub student: u32,
    /// History length of the request (the append-one "step number").
    pub history_len: usize,
    /// FNV-1a over the canonical byte encoding of the full request.
    pub content_hash: u64,
}

impl SessionKey {
    /// Canonical key for a request against one loaded model.
    pub fn for_request(model_hash: u64, req: &JobRequest) -> SessionKey {
        let mut bytes = Vec::with_capacity(16);
        let (kind, student, history_len) = match req {
            JobRequest::Predict(r) => {
                bytes.push(b'p');
                bytes.extend_from_slice(&r.student.to_le_bytes());
                for h in &r.history {
                    bytes.extend_from_slice(&h.question.to_le_bytes());
                    bytes.push(h.correct as u8);
                }
                bytes.push(b'|');
                bytes.extend_from_slice(&r.target_question.to_le_bytes());
                (KeyKind::Predict, r.student, r.history.len())
            }
            JobRequest::Explain(r) => {
                bytes.push(b'e');
                bytes.extend_from_slice(&r.student.to_le_bytes());
                for h in &r.history {
                    bytes.extend_from_slice(&h.question.to_le_bytes());
                    bytes.push(h.correct as u8);
                }
                bytes.push(b'|');
                match r.target {
                    Some(t) => {
                        bytes.push(1);
                        bytes.extend_from_slice(&(t as u64).to_le_bytes());
                    }
                    None => bytes.push(0),
                }
                (KeyKind::Explain, r.student, r.history.len())
            }
        };
        SessionKey {
            model_hash,
            kind,
            student,
            history_len,
            content_hash: crate::fnv1a(&bytes),
        }
    }
}

struct Inner {
    map: HashMap<SessionKey, (u64, Outcome)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A small mutex-guarded LRU. Eviction scans for the oldest tick — O(n),
/// fine at the few-thousand-entry capacities used here and dependency-free.
pub struct SessionCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl SessionCache {
    pub fn new(capacity: usize) -> SessionCache {
        SessionCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&self, key: &SessionKey) -> Option<Outcome> {
        let mut g = lock_recover(&self.inner);
        let tick = {
            g.tick += 1;
            g.tick
        };
        match g.map.get_mut(key) {
            Some(slot) => {
                slot.0 = tick;
                let out = slot.1.clone();
                g.hits += 1;
                Some(out)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a key, evicting the least-recently-used entry
    /// when full. A zero capacity disables caching entirely.
    ///
    /// Inserting also drops the same student's same-kind entries with a
    /// *shorter* history: in the dominant append-one traffic pattern those
    /// prefixes will never be asked again, so holding them only starves
    /// other students of capacity.
    pub fn put(&self, key: SessionKey, value: Outcome) {
        if self.capacity == 0 {
            return;
        }
        let mut g = lock_recover(&self.inner);
        g.tick += 1;
        let tick = g.tick;
        let stale: Vec<SessionKey> = g
            .map
            .keys()
            .filter(|k| {
                k.model_hash == key.model_hash
                    && k.kind == key.kind
                    && k.student == key.student
                    && k.history_len < key.history_len
            })
            .cloned()
            .collect();
        if !stale.is_empty() {
            counter("serve.session.stale_invalidated").add(stale.len() as u64);
            for k in &stale {
                g.map.remove(k);
            }
        }
        if g.map.len() >= self.capacity && !g.map.contains_key(&key) {
            if let Some(oldest) = g
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                g.map.remove(&oldest);
                counter("serve.session.evictions").incr();
            }
        }
        g.map.insert(key, (tick, value));
        gauge("serve.session.resident").set(g.map.len() as f64);
    }

    pub fn len(&self) -> usize {
        lock_recover(&self.inner).map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        let g = lock_recover(&self.inner);
        (g.hits, g.misses)
    }

    /// Hit rate in `[0, 1]`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

struct StoreInner {
    map: HashMap<u32, (u64, IncrementalState)>,
    tick: u64,
    /// Σ `state_bytes()` over resident states, kept incrementally.
    bytes: usize,
}

/// Warm-path store: per-student [`IncrementalState`], LRU-evicted. The
/// batcher worker `take`s a student's state (exclusive ownership while it
/// appends) and `put`s it back; handlers never touch it, so the mutex is
/// uncontended in steady state.
pub struct SessionStore {
    inner: Mutex<StoreInner>,
    capacity: usize,
}

impl SessionStore {
    pub fn new(capacity: usize) -> SessionStore {
        SessionStore {
            inner: Mutex::new(StoreInner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            capacity,
        }
    }

    /// Maximum number of resident session states; 0 disables the warm path.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remove and return a student's state (the caller owns it until the
    /// next [`SessionStore::put`]).
    pub fn take(&self, student: u32) -> Option<IncrementalState> {
        let mut g = lock_recover(&self.inner);
        let state = g.map.remove(&student).map(|(_, s)| s);
        if let Some(s) = &state {
            g.bytes = g.bytes.saturating_sub(s.state_bytes());
        }
        state
    }

    /// Insert (or return) a student's state, evicting the least-recently
    /// used state when full. A zero capacity drops the state (warm path
    /// disabled).
    pub fn put(&self, student: u32, state: IncrementalState) {
        if self.capacity == 0 {
            return;
        }
        let mut g = lock_recover(&self.inner);
        g.tick += 1;
        let tick = g.tick;
        if g.map.len() >= self.capacity && !g.map.contains_key(&student) {
            if let Some(oldest) = g.map.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k) {
                if let Some((_, evicted)) = g.map.remove(&oldest) {
                    g.bytes = g.bytes.saturating_sub(evicted.state_bytes());
                }
                counter("serve.session.state_evictions").incr();
            }
        }
        g.bytes += state.state_bytes();
        g.map.insert(student, (tick, state));
        gauge("serve.session.states_resident").set(g.map.len() as f64);
        gauge("serve.session.state_bytes").set(g.bytes as f64);
    }

    /// Number of resident session states.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident state size in bytes (the state-bytes gauge's value).
    pub fn state_bytes(&self) -> usize {
        lock_recover(&self.inner).bytes
    }

    /// Students with a resident state, in no particular order (test aid).
    pub fn resident_students(&self) -> Vec<u32> {
        lock_recover(&self.inner).map.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{HistoryItem, PredictRequest};

    fn key_for(student: u32, history_len: usize, target_question: u32) -> SessionKey {
        let req = JobRequest::Predict(PredictRequest {
            student,
            history: (0..history_len)
                .map(|i| HistoryItem {
                    question: i as u32 + 1,
                    correct: i % 2 == 0,
                })
                .collect(),
            target_question,
        });
        SessionKey::for_request(0xfeed, &req)
    }

    fn item(student: u32, score: f32) -> Outcome {
        Outcome::Predict(PredictResponseItem { student, score })
    }

    fn score_of(o: &Outcome) -> f32 {
        match o {
            Outcome::Predict(p) => p.score,
            Outcome::Explain(_) => panic!("predict outcome expected"),
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let c = SessionCache::new(8);
        let k = key_for(1, 2, 9);
        assert!(c.get(&k).is_none());
        c.put(k.clone(), item(1, 0.25));
        let got = c.get(&k).unwrap();
        assert_eq!(score_of(&got), 0.25);
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_is_content_sensitive() {
        // Same student + same length but different answers or target must
        // produce distinct keys (no canonical-JSON collision semantics).
        let a = key_for(1, 3, 9);
        let mut req = PredictRequest {
            student: 1,
            history: (0..3)
                .map(|i| HistoryItem {
                    question: i as u32 + 1,
                    correct: i % 2 == 0,
                })
                .collect(),
            target_question: 9,
        };
        req.history[1].correct = !req.history[1].correct;
        let b = SessionKey::for_request(0xfeed, &JobRequest::Predict(req));
        assert_eq!(a.student, b.student);
        assert_eq!(a.history_len, b.history_len);
        assert_ne!(a, b, "flipping one answer must change the key");
        assert_ne!(a, key_for(1, 3, 10), "target question is part of the key");
        let other_model = SessionKey {
            model_hash: 0xbeef,
            ..a.clone()
        };
        assert_ne!(a, other_model, "model hash is part of the key");
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = SessionCache::new(2);
        let (ka, kb, kc) = (key_for(1, 1, 5), key_for(2, 1, 5), key_for(3, 1, 5));
        c.put(ka.clone(), item(1, 0.1));
        c.put(kb.clone(), item(2, 0.2));
        // Touch "a" so "b" becomes the LRU entry.
        assert!(c.get(&ka).is_some());
        c.put(kc.clone(), item(3, 0.3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&ka).is_some());
        assert!(c.get(&kb).is_none(), "LRU entry evicted");
        assert!(c.get(&kc).is_some());
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let c = SessionCache::new(2);
        let (ka, kb) = (key_for(1, 1, 5), key_for(2, 1, 5));
        c.put(ka.clone(), item(1, 0.1));
        c.put(kb.clone(), item(2, 0.2));
        c.put(ka.clone(), item(1, 0.9));
        assert_eq!(c.len(), 2);
        assert_eq!(score_of(&c.get(&ka).unwrap()), 0.9);
        assert!(c.get(&kb).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = SessionCache::new(0);
        let k = key_for(1, 1, 5);
        c.put(k.clone(), item(1, 0.1));
        assert!(c.is_empty());
        assert!(c.get(&k).is_none());
    }

    #[test]
    fn appended_history_invalidates_stale_prefix_entries() {
        let c = SessionCache::new(8);
        let (s5_len2, s5_len3, s5_len4) = (key_for(5, 2, 9), key_for(5, 3, 9), key_for(5, 4, 9));
        let other_student = key_for(6, 2, 9);
        c.put(s5_len2.clone(), item(5, 0.2));
        c.put(other_student.clone(), item(6, 0.6));
        c.put(s5_len3.clone(), item(5, 0.3));
        assert!(
            c.get(&s5_len2).is_none(),
            "appending a response must invalidate the shorter-prefix entry"
        );
        assert!(c.get(&s5_len3).is_some());
        assert!(
            c.get(&other_student).is_some(),
            "other students' entries are untouched"
        );
        c.put(s5_len4.clone(), item(5, 0.4));
        assert!(c.get(&s5_len3).is_none());
        assert_eq!(c.len(), 2, "one live entry per student plus the other");
    }

    #[test]
    fn explain_entries_do_not_invalidate_predict_entries() {
        let c = SessionCache::new(8);
        let predict = key_for(5, 2, 9);
        c.put(predict.clone(), item(5, 0.2));
        let explain = SessionKey {
            kind: KeyKind::Explain,
            history_len: 4,
            ..predict.clone()
        };
        c.put(
            explain,
            Outcome::Predict(PredictResponseItem {
                student: 5,
                score: 0.0,
            }),
        );
        assert!(
            c.get(&predict).is_some(),
            "cross-kind entries must not invalidate each other"
        );
    }
}
