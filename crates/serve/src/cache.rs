//! Per-student session cache: an LRU memo from (model hash, canonical
//! request JSON) to the finished outcome. A student re-querying the same
//! history prefix — the dominant online pattern, since each new response
//! appends to an otherwise-identical history — skips the model entirely
//! and is answered from the cache with bit-identical bytes.

use crate::api::{ExplainResponseItem, PredictResponseItem};
use std::collections::HashMap;
use std::sync::Mutex;

/// A finished, cacheable result for one request.
#[derive(Clone, Debug)]
pub enum Outcome {
    Predict(PredictResponseItem),
    Explain(ExplainResponseItem),
}

struct Inner {
    map: HashMap<String, (u64, Outcome)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A small mutex-guarded LRU. Eviction scans for the oldest tick — O(n),
/// fine at the few-thousand-entry capacities used here and dependency-free.
pub struct SessionCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl SessionCache {
    pub fn new(capacity: usize) -> SessionCache {
        SessionCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Outcome> {
        let mut g = self.inner.lock().unwrap();
        let tick = {
            g.tick += 1;
            g.tick
        };
        match g.map.get_mut(key) {
            Some(slot) => {
                slot.0 = tick;
                let out = slot.1.clone();
                g.hits += 1;
                Some(out)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a key, evicting the least-recently-used entry
    /// when full. A zero capacity disables caching entirely.
    pub fn put(&self, key: String, value: Outcome) {
        if self.capacity == 0 {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        g.tick += 1;
        let tick = g.tick;
        if g.map.len() >= self.capacity && !g.map.contains_key(&key) {
            if let Some(oldest) = g
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                g.map.remove(&oldest);
            }
        }
        g.map.insert(key, (tick, value));
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        let g = self.inner.lock().unwrap();
        (g.hits, g.misses)
    }

    /// Hit rate in `[0, 1]`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(student: u32, score: f32) -> Outcome {
        Outcome::Predict(PredictResponseItem { student, score })
    }

    fn score_of(o: &Outcome) -> f32 {
        match o {
            Outcome::Predict(p) => p.score,
            Outcome::Explain(_) => panic!("predict outcome expected"),
        }
    }

    #[test]
    fn hit_miss_and_stats() {
        let c = SessionCache::new(8);
        assert!(c.get("a").is_none());
        c.put("a".into(), item(1, 0.25));
        let got = c.get("a").unwrap();
        assert_eq!(score_of(&got), 0.25);
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = SessionCache::new(2);
        c.put("a".into(), item(1, 0.1));
        c.put("b".into(), item(2, 0.2));
        // Touch "a" so "b" becomes the LRU entry.
        assert!(c.get("a").is_some());
        c.put("c".into(), item(3, 0.3));
        assert_eq!(c.len(), 2);
        assert!(c.get("a").is_some());
        assert!(c.get("b").is_none(), "LRU entry evicted");
        assert!(c.get("c").is_some());
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let c = SessionCache::new(2);
        c.put("a".into(), item(1, 0.1));
        c.put("b".into(), item(2, 0.2));
        c.put("a".into(), item(1, 0.9));
        assert_eq!(c.len(), 2);
        assert_eq!(score_of(&c.get("a").unwrap()), 0.9);
        assert!(c.get("b").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = SessionCache::new(0);
        c.put("a".into(), item(1, 0.1));
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
    }
}
