//! Micro-batching core: a fleet of bounded request queues, each drained
//! by its own worker thread that fuses same-kind jobs into a single
//! `predict_targets` / `influences_exact` call. Because every eval op
//! computes batch rows independently (and windows are padded to one fixed
//! length), fusing is invisible in the output bits — a request answered
//! in a wave of 8 is byte-identical to the same request answered alone,
//! at any shard count.
//!
//! Sharding ([`Fleet`]) routes each job by FNV-1a of its student id, so
//! one student's consecutive append-one requests always land on the same
//! shard in arrival order — the warm path's session state never sees
//! interleaved writers.
//!
//! Each queue is bounded: a full queue sheds load with
//! [`ApiError::Overloaded`] (the HTTP layer turns that into a 503 +
//! `Retry-After`) instead of letting latency grow without bound, and a
//! draining server rejects new work while the workers finish what was
//! already accepted.
//!
//! A panicking wave does not wedge its shard: the worker catches the
//! unwind, answers everything still queued with a 500 (the in-flight
//! wave's reply channels die with the unwind, which the HTTP layer also
//! turns into 500s), and keeps serving the next wave. No client ever
//! hangs until its socket timeout waiting on a dead worker.

use crate::api::{self, ApiError, ExplainRequest, PredictRequest};
use crate::cache::{Outcome, SessionCache, SessionKey, SessionStore};
use crate::{lock_recover, warm};
use rckt::Rckt;
use rckt_data::QMatrix;
use rckt_obs::{counter, gauge, histogram, histogram_with};
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Everything the worker needs to answer a request: the loaded model,
/// its question→concept mapping, the fixed pad length, and the session
/// cache. Shared immutably across the worker and the HTTP handlers.
pub struct Engine {
    pub model: Rckt,
    pub qm: QMatrix,
    /// Fixed pad length for every served window; also the bound on
    /// history length. Shared with the offline CLI for bit-identity.
    pub window: usize,
    pub cache: SessionCache,
    /// Warm-path store: per-student incremental encoder state, so an
    /// append-one request recomputes one position instead of the full
    /// counterfactual fan-out. Only consulted when the loaded model
    /// supports incremental inference (see [`Engine::warm_capable`]).
    pub sessions: SessionStore,
    /// FNV-1a hash of the model file, part of every cache key so a
    /// process serving a different model never reads stale entries.
    pub model_hash: u64,
    /// Streaming model-quality monitor + optional replayable quality
    /// log; fed by the HTTP handlers, scraped via `/metrics`.
    pub quality: crate::quality::Quality,
}

impl Engine {
    /// Whether predict misses can take the warm append-one path: the
    /// encoder must be forward-only (bidirectional context invalidates
    /// every cached position on append) and the session store enabled.
    pub fn warm_capable(&self) -> bool {
        self.model.supports_incremental() && self.sessions.capacity() > 0
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("model_hash", &format_args!("{:016x}", self.model_hash))
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

/// A single queued unit of work — one element of a request body.
#[derive(Clone, Debug)]
pub enum JobRequest {
    Predict(PredictRequest),
    Explain(ExplainRequest),
}

impl JobRequest {
    fn is_predict(&self) -> bool {
        matches!(self, JobRequest::Predict(_))
    }
}

/// Cache key for a request against the loaded model — see
/// [`SessionKey::for_request`] for the structured layout that lets the
/// cache invalidate a student's stale shorter-history entries.
pub fn cache_key(model_hash: u64, req: &JobRequest) -> SessionKey {
    SessionKey::for_request(model_hash, req)
}

/// How one job spent its time inside the batcher, returned with every
/// reply so the HTTP layer can attach a queue/batch/infer breakdown to
/// response headers and the access log.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct JobTiming {
    /// Seconds spent queued before the wave picked the job up.
    pub queue_secs: f64,
    /// Seconds of the fused model call that answered the job; 0 for
    /// cache hits and expired deadlines.
    pub infer_secs: f64,
    /// Number of jobs in the wave that answered this one.
    pub batch_size: usize,
    /// Whether the session cache answered without touching the model.
    pub cache_hit: bool,
    /// Warm-path classification when the job went through the session
    /// store; `None` for cache hits, fused cold batches, and explains.
    pub warm: Option<crate::warm::WarmKind>,
    /// Which shard's worker answered the job.
    pub shard: usize,
}

/// A reply to one job: body position, outcome, timing breakdown.
pub type JobReply = (usize, Result<Outcome, ApiError>, JobTiming);

pub struct Job {
    pub key: SessionKey,
    pub req: JobRequest,
    /// The request's position in its HTTP body, echoed back so the
    /// handler can reassemble responses in order.
    pub index: usize,
    pub enqueued: Instant,
    /// Past this instant a still-queued job is answered with
    /// [`ApiError::DeadlineExceeded`] instead of being computed.
    pub deadline: Option<Instant>,
    pub reply: mpsc::Sender<JobReply>,
    /// Test-only panic injection (`RCKT_SERVE_TEST_PANIC=1` plus an
    /// `x-rckt-test-panic: wave` header): the wave that picks this job up
    /// panics mid-flight, exercising the shard-restart path end to end.
    /// Never set in production.
    pub poison: bool,
}

struct Shared {
    engine: Arc<Engine>,
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    stop: AtomicBool,
    draining: AtomicBool,
    max_queue: usize,
    max_batch: usize,
    /// This shard's index within its [`Fleet`] (0 for a standalone
    /// batcher), baked into thread names and the per-shard metric names.
    shard: usize,
    /// Pre-rendered per-shard metric names (`serve.shard.<i>.depth`,
    /// `serve.shard.<i>.restarts`) so the hot paths don't format strings.
    depth_gauge: String,
    restart_counter: String,
    /// Jobs queued across the whole fleet, kept in lockstep with the
    /// per-shard queues so the aggregate `serve.queue.depth` gauge stays
    /// consistent without locking every shard.
    fleet_depth: Arc<AtomicUsize>,
}

impl Shared {
    /// Publish queue-depth gauges from a depth observed *under* the queue
    /// lock and a signed fleet-wide delta — never from a re-lock that
    /// could race with concurrent pushes.
    fn publish_depth(&self, shard_depth: usize, fleet_delta: isize) {
        gauge(&self.depth_gauge).set(shard_depth as f64);
        let total = if fleet_delta >= 0 {
            self.fleet_depth
                .fetch_add(fleet_delta as usize, Ordering::AcqRel)
                + fleet_delta as usize
        } else {
            self.fleet_depth
                .fetch_sub((-fleet_delta) as usize, Ordering::AcqRel)
                .saturating_sub((-fleet_delta) as usize)
        };
        gauge("serve.queue.depth").set(total as f64);
    }
}

/// One bounded queue plus its worker thread — a single shard. Use
/// [`Fleet`] for the student-keyed multi-shard front end.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// A standalone single-shard batcher (shard id 0, its own depth
    /// accounting). Equivalent to `Fleet::start(.., 1, ..)` minus the
    /// routing layer; kept for tests and embedding.
    pub fn start(engine: Arc<Engine>, max_batch: usize, max_queue: usize) -> Batcher {
        Batcher::start_shard(
            engine,
            0,
            max_batch,
            max_queue,
            Arc::new(AtomicUsize::new(0)),
        )
    }

    fn start_shard(
        engine: Arc<Engine>,
        shard: usize,
        max_batch: usize,
        max_queue: usize,
        fleet_depth: Arc<AtomicUsize>,
    ) -> Batcher {
        let shared = Arc::new(Shared {
            engine,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            max_queue,
            max_batch: max_batch.max(1),
            shard,
            depth_gauge: format!("serve.shard.{shard}.depth"),
            restart_counter: format!("serve.shard.{shard}.restarts"),
            fleet_depth,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name(format!("rckt-serve-batcher-{shard}"))
            .spawn(move || worker_loop(&worker_shared))
            .expect("spawn batcher worker");
        Batcher {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Enqueue a job, or shed it if the server is draining or the queue
    /// is at capacity. Callers must have validated the request already —
    /// by the time a job reaches the worker, only capacity and deadline
    /// failures are possible.
    pub fn submit(&self, job: Job) -> Result<(), ApiError> {
        if self.shared.draining.load(Ordering::Acquire) {
            return Err(ApiError::Draining);
        }
        let mut q = lock_recover(&self.shared.queue);
        if q.len() >= self.shared.max_queue {
            counter("serve.requests.shed").incr();
            return Err(ApiError::Overloaded);
        }
        q.push_back(job);
        let depth = q.len();
        drop(q);
        self.shared.publish_depth(depth, 1);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Reject new submissions while the worker keeps answering what was
    /// already accepted. `drain_and_stop` finishes the job.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.shared.queue).len()
    }

    /// Graceful shutdown: reject new work, let the worker finish every
    /// job already accepted, then join it. Idempotent.
    pub fn drain_and_stop(&self) {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(handle) = lock_recover(&self.worker).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.drain_and_stop();
    }
}

/// N batcher shards fronted by a student-keyed router. The shard for a
/// student is `fnv1a(student_le_bytes) % workers`, so one student's
/// requests — and therefore their warm-path session state and memo
/// entries — always live on exactly one shard, preserving append-one
/// ordering per student at any worker count. Each shard owns a
/// `max_queue`-deep queue (capacity scales with workers).
pub struct Fleet {
    shards: Vec<Batcher>,
}

impl Fleet {
    pub fn start(engine: Arc<Engine>, workers: usize, max_batch: usize, max_queue: usize) -> Fleet {
        let workers = workers.max(1);
        let fleet_depth = Arc::new(AtomicUsize::new(0));
        let shards: Vec<Batcher> = (0..workers)
            .map(|i| {
                Batcher::start_shard(
                    Arc::clone(&engine),
                    i,
                    max_batch,
                    max_queue,
                    Arc::clone(&fleet_depth),
                )
            })
            .collect();
        // Publish the per-shard families at zero so a scrape taken before
        // any traffic still shows every shard.
        for s in &shards {
            gauge(&s.shared.depth_gauge).set(0.0);
        }
        gauge("serve.workers").set(workers as f64);
        Fleet { shards }
    }

    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns a student's requests.
    pub fn shard_of(&self, student: u32) -> usize {
        (crate::fnv1a(&student.to_le_bytes()) % self.shards.len() as u64) as usize
    }

    /// Route a job to its student's shard.
    pub fn submit(&self, job: Job) -> Result<(), ApiError> {
        self.shards[self.shard_of(job.key.student)].submit(job)
    }

    pub fn begin_drain(&self) {
        for s in &self.shards {
            s.begin_drain();
        }
    }

    pub fn is_draining(&self) -> bool {
        self.shards.iter().any(Batcher::is_draining)
    }

    /// Per-shard queue depths, indexed by shard id.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(Batcher::queue_depth).collect()
    }

    pub fn queue_depth(&self) -> usize {
        self.queue_depths().iter().sum()
    }

    pub fn drain_and_stop(&self) {
        for s in &self.shards {
            s.drain_and_stop();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (wave, depth) = {
            let mut q = lock_recover(&shared.queue);
            loop {
                if !q.is_empty() {
                    let wave = take_wave(&mut q, shared.max_batch);
                    // Depth observed under the same lock that popped the
                    // wave; re-locking after the pop would race with
                    // concurrent pushes and publish a stale value.
                    break (wave, q.len());
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                q = shared.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let taken = wave.len();
        shared.publish_depth(depth, -(taken as isize));
        run_wave_guarded(shared, wave);
    }
}

/// Run one wave, surviving a panic inside it. On an unwind the wave's
/// jobs die with it — their reply senders drop, which the HTTP layer
/// answers as 500s — and everything still queued behind the wave is
/// answered with an explicit 500 so no client waits on work this worker
/// will never do. The loop then continues: the shard has restarted and
/// the next wave is served normally.
fn run_wave_guarded(shared: &Shared, wave: Vec<Job>) {
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        process_wave(&shared.engine, shared.shard, wave);
    }));
    if caught.is_err() {
        counter("serve.worker.panics").incr();
        counter(&shared.restart_counter).incr();
        let queued: Vec<Job> = {
            let mut q = lock_recover(&shared.queue);
            q.drain(..).collect()
        };
        let failed = queued.len();
        for job in queued {
            let t = JobTiming {
                queue_secs: job.enqueued.elapsed().as_secs_f64(),
                shard: shared.shard,
                ..JobTiming::default()
            };
            let _ = job.reply.send((
                job.index,
                Err(ApiError::Internal(
                    "batch worker panicked; request failed during shard restart".to_string(),
                )),
                t,
            ));
        }
        shared.publish_depth(0, -(failed as isize));
    }
}

/// Pop up to `max_batch` jobs of the front job's kind, preserving the
/// arrival order of everything left behind.
fn take_wave(q: &mut VecDeque<Job>, max_batch: usize) -> Vec<Job> {
    let predict = q.front().map(|j| j.req.is_predict()).unwrap_or(true);
    let mut wave = Vec::new();
    let mut i = 0;
    while i < q.len() && wave.len() < max_batch {
        if q[i].req.is_predict() == predict {
            wave.push(q.remove(i).unwrap());
        } else {
            i += 1;
        }
    }
    wave
}

/// Answer one wave: expire deadlines, serve cache hits, fuse the distinct
/// misses into one model call, fill the cache, and reply to every job.
/// Every reply carries its [`JobTiming`]; the wave itself records a
/// `serve/wave` span so per-request trace events can be attributed to
/// the wave that computed them.
pub(crate) fn process_wave(engine: &Engine, shard: usize, jobs: Vec<Job>) {
    let _wave = rckt_obs::span("serve/wave");
    if jobs.iter().any(|j| j.poison) {
        // Test-only injection (see `Job::poison`): die exactly where a
        // real model-call panic would, with the rest of the wave in
        // flight and jobs still queued behind it.
        panic!("test wave panic requested on shard {shard}");
    }
    let now = Instant::now();
    let wave_size = jobs.len();
    let queue_seconds = histogram("serve.queue.seconds");
    counter("serve.batches").incr();
    histogram_with("serve.batch.size", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
        .observe(jobs.len() as f64);

    let timing_for = |job: &Job, infer_secs: f64, cache_hit: bool| JobTiming {
        queue_secs: now.duration_since(job.enqueued).as_secs_f64(),
        infer_secs,
        batch_size: wave_size,
        cache_hit,
        warm: None,
        shard,
    };

    let mut live: Vec<Job> = Vec::with_capacity(jobs.len());
    for job in jobs {
        queue_seconds.observe(now.duration_since(job.enqueued).as_secs_f64());
        if job.deadline.is_some_and(|d| now > d) {
            counter("serve.requests.deadline").incr();
            let t = timing_for(&job, 0.0, false);
            let _ = job
                .reply
                .send((job.index, Err(ApiError::DeadlineExceeded), t));
        } else {
            live.push(job);
        }
    }

    // Cache pass: hits reply immediately; misses are grouped by key so a
    // wave of identical requests costs one model slot. `miss_order`
    // preserves arrival order — on the warm path that is what keeps one
    // student's multi-step appends applying to the session state in order.
    let mut miss_order: Vec<SessionKey> = Vec::new();
    let mut misses: HashMap<SessionKey, Vec<Job>> = HashMap::new();
    for job in live {
        if let Some(out) = engine.cache.get(&job.key) {
            counter("serve.cache.hits").incr();
            let t = timing_for(&job, 0.0, true);
            let _ = job.reply.send((job.index, Ok(out), t));
        } else {
            counter("serve.cache.misses").incr();
            if !misses.contains_key(&job.key) {
                miss_order.push(job.key.clone());
            }
            misses.entry(job.key.clone()).or_default().push(job);
        }
    }
    gauge("serve.cache.hit_rate").set(engine.cache.hit_rate());
    if miss_order.is_empty() {
        return;
    }

    let mut predict_keys = Vec::new();
    let mut predict_reqs = Vec::new();
    let mut explain_keys = Vec::new();
    let mut explain_reqs = Vec::new();
    for key in &miss_order {
        match &misses[key][0].req {
            JobRequest::Predict(r) => {
                predict_keys.push(key.clone());
                predict_reqs.push(r.clone());
            }
            JobRequest::Explain(r) => {
                explain_keys.push(key.clone());
                explain_reqs.push(r.clone());
            }
        }
    }

    let mut reply_all = |key: &SessionKey,
                         result: Result<Outcome, ApiError>,
                         infer_secs: f64,
                         warm_kind: Option<warm::WarmKind>| {
        if let Ok(out) = &result {
            engine.cache.put(key.clone(), out.clone());
        }
        for job in misses.remove(key).unwrap_or_default() {
            let mut t = timing_for(&job, infer_secs, false);
            t.warm = warm_kind;
            let _ = job.reply.send((job.index, result.clone(), t));
        }
    };

    if !predict_reqs.is_empty() {
        if engine.warm_capable() {
            // Warm path: answer each distinct miss through the session
            // store, in arrival order. Solo evaluation here is free —
            // the incremental path recomputes only appended positions —
            // and keeps one student's consecutive steps appending to the
            // same state instead of fusing into one stale batch.
            for (key, req) in predict_keys.iter().zip(&predict_reqs) {
                let infer_start = Instant::now();
                let result = warm::predict_one(engine, &engine.sessions, req);
                let infer_secs = infer_start.elapsed().as_secs_f64();
                histogram("serve.infer.seconds").observe(infer_secs);
                match result {
                    Ok((item, stats)) => {
                        if stats.is_warm() {
                            counter("serve.predict.warm").incr();
                        } else {
                            counter("serve.predict.cold").incr();
                        }
                        if stats.kind == warm::WarmKind::DivergedRebuild {
                            counter("serve.session.fallbacks").incr();
                        }
                        histogram_with(
                            "serve.session.positions_recomputed",
                            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
                        )
                        .observe(stats.positions_recomputed as f64);
                        reply_all(
                            key,
                            Ok(Outcome::Predict(item)),
                            infer_secs,
                            Some(stats.kind),
                        );
                    }
                    Err(e) => reply_all(key, Err(e), infer_secs, None),
                }
            }
        } else {
            let infer_start = Instant::now();
            let result =
                api::predict_batch(&engine.model, &engine.qm, &predict_reqs, engine.window);
            let infer_secs = infer_start.elapsed().as_secs_f64();
            histogram("serve.infer.seconds").observe(infer_secs);
            counter("serve.predict.cold").add(predict_keys.len() as u64);
            match result {
                Ok(resp) => {
                    for (key, item) in predict_keys.iter().zip(resp.predictions) {
                        reply_all(
                            key,
                            Ok(Outcome::Predict(item)),
                            infer_secs,
                            Some(warm::WarmKind::ColdBuild),
                        );
                    }
                }
                Err(e) => {
                    for key in &predict_keys {
                        reply_all(key, Err(e.clone()), infer_secs, None);
                    }
                }
            }
        }
    }
    if !explain_reqs.is_empty() {
        let infer_start = Instant::now();
        let result = api::explain_batch(&engine.model, &engine.qm, &explain_reqs, engine.window);
        let infer_secs = infer_start.elapsed().as_secs_f64();
        histogram("serve.infer.seconds").observe(infer_secs);
        match result {
            Ok(resp) => {
                for (key, item) in explain_keys.iter().zip(resp.explanations) {
                    reply_all(key, Ok(Outcome::Explain(item)), infer_secs, None);
                }
            }
            Err(e) => {
                for key in &explain_keys {
                    reply_all(key, Err(e.clone()), infer_secs, None);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::HistoryItem;
    use rckt::{Backbone, RcktConfig};
    use rckt_data::SyntheticSpec;
    use std::time::Duration;

    fn engine_with(unidirectional: bool) -> Arc<Engine> {
        let ds = SyntheticSpec::assist09().scaled(0.05).generate();
        let model = Rckt::new(
            Backbone::Dkt,
            ds.num_questions(),
            ds.num_concepts(),
            RcktConfig {
                dim: 8,
                unidirectional,
                ..Default::default()
            },
        );
        Arc::new(Engine {
            model,
            qm: ds.q_matrix,
            window: 16,
            cache: SessionCache::new(64),
            sessions: SessionStore::new(64),
            model_hash: 0xfeed,
            quality: crate::quality::Quality::new(None, None).unwrap(),
        })
    }

    /// Bidirectional engine: the default serve configuration before this
    /// change, exercising the fused exact path.
    fn engine() -> Arc<Engine> {
        engine_with(false)
    }

    fn predict_req(student: u32, target_question: u32) -> PredictRequest {
        PredictRequest {
            student,
            history: vec![
                HistoryItem {
                    question: 1,
                    correct: true,
                },
                HistoryItem {
                    question: 2,
                    correct: false,
                },
            ],
            target_question,
        }
    }

    fn job(
        eng: &Engine,
        req: JobRequest,
        index: usize,
        deadline: Option<Instant>,
    ) -> (Job, mpsc::Receiver<JobReply>) {
        let (tx, rx) = mpsc::channel();
        let j = Job {
            key: cache_key(eng.model_hash, &req),
            req,
            index,
            enqueued: Instant::now(),
            deadline,
            reply: tx,
            poison: false,
        };
        (j, rx)
    }

    #[test]
    fn expired_deadline_gets_504_without_compute() {
        let eng = engine();
        let past = Instant::now() - Duration::from_millis(50);
        let (j, rx) = job(&eng, JobRequest::Predict(predict_req(0, 3)), 7, Some(past));
        process_wave(&eng, 0, vec![j]);
        let (idx, result, timing) = rx.recv().unwrap();
        assert_eq!(idx, 7);
        assert_eq!(result.unwrap_err(), ApiError::DeadlineExceeded);
        assert!(eng.cache.is_empty(), "expired job must not touch the model");
        assert!(
            timing.queue_secs >= 0.0,
            "queue time is measured: {timing:?}"
        );
        assert_eq!(timing.infer_secs, 0.0, "no compute happened: {timing:?}");
        assert!(!timing.cache_hit);
    }

    #[test]
    fn wave_results_match_offline_batch_bitwise() {
        let eng = engine();
        let reqs = vec![predict_req(0, 3), predict_req(1, 4)];
        let oracle = api::predict_batch(&eng.model, &eng.qm, &reqs, eng.window).unwrap();
        let mut rxs = Vec::new();
        let mut jobs = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            let (j, rx) = job(&eng, JobRequest::Predict(r.clone()), i, None);
            jobs.push(j);
            rxs.push(rx);
        }
        process_wave(&eng, 0, jobs);
        for (i, rx) in rxs.iter().enumerate() {
            let (idx, result, timing) = rx.recv().unwrap();
            assert_eq!(idx, i);
            assert_eq!(timing.batch_size, 2, "both jobs share one wave");
            assert!(timing.infer_secs > 0.0, "computed jobs carry infer time");
            assert!(!timing.cache_hit);
            match result.unwrap() {
                Outcome::Predict(p) => {
                    assert_eq!(p.score.to_bits(), oracle.predictions[i].score.to_bits())
                }
                Outcome::Explain(_) => panic!("predict outcome expected"),
            }
        }
    }

    #[test]
    fn duplicate_keys_in_one_wave_share_a_model_slot_and_fill_cache() {
        let eng = engine();
        let r = predict_req(5, 3);
        let (j1, rx1) = job(&eng, JobRequest::Predict(r.clone()), 0, None);
        let (j2, rx2) = job(&eng, JobRequest::Predict(r.clone()), 1, None);
        process_wave(&eng, 0, vec![j1, j2]);
        let a = rx1.recv().unwrap().1.unwrap();
        let b = rx2.recv().unwrap().1.unwrap();
        match (&a, &b) {
            (Outcome::Predict(x), Outcome::Predict(y)) => {
                assert_eq!(x.score.to_bits(), y.score.to_bits())
            }
            _ => panic!("predict outcomes expected"),
        }
        assert_eq!(eng.cache.len(), 1);
        // A later wave with the same request is a pure cache hit, and
        // the reply's timing says so.
        let (j3, rx3) = job(&eng, JobRequest::Predict(r), 0, None);
        process_wave(&eng, 0, vec![j3]);
        let (_, result, timing) = rx3.recv().unwrap();
        assert!(result.is_ok());
        assert!(timing.cache_hit, "repeat request must be a cache hit");
        assert_eq!(timing.infer_secs, 0.0);
        let (hits, _) = eng.cache.stats();
        assert!(hits >= 1, "repeat request must hit the session cache");
    }

    #[test]
    fn mixed_wave_answers_both_kinds() {
        let eng = engine();
        let (jp, rxp) = job(&eng, JobRequest::Predict(predict_req(0, 3)), 0, None);
        let er = ExplainRequest {
            student: 1,
            history: vec![
                HistoryItem {
                    question: 1,
                    correct: true,
                },
                HistoryItem {
                    question: 3,
                    correct: true,
                },
            ],
            target: None,
        };
        let (je, rxe) = job(&eng, JobRequest::Explain(er), 0, None);
        process_wave(&eng, 0, vec![jp, je]);
        assert!(matches!(
            rxp.recv().unwrap().1.unwrap(),
            Outcome::Predict(_)
        ));
        match rxe.recv().unwrap().1.unwrap() {
            Outcome::Explain(e) => assert_eq!(e.record.target, 1),
            Outcome::Predict(_) => panic!("explain outcome expected"),
        }
    }

    #[test]
    fn full_queue_sheds_and_draining_rejects() {
        let eng = engine();
        // Zero-capacity queue: every submit is shed with Overloaded.
        let b = Batcher::start(Arc::clone(&eng), 4, 0);
        let (j, _rx) = job(&eng, JobRequest::Predict(predict_req(0, 3)), 0, None);
        assert_eq!(b.submit(j).unwrap_err(), ApiError::Overloaded);
        b.drain_and_stop();
        assert!(b.is_draining());
        let (j, _rx) = job(&eng, JobRequest::Predict(predict_req(0, 3)), 0, None);
        assert_eq!(b.submit(j).unwrap_err(), ApiError::Draining);
    }

    #[test]
    fn batcher_end_to_end_matches_offline() {
        let eng = engine();
        let b = Batcher::start(Arc::clone(&eng), 8, 64);
        let reqs = vec![predict_req(0, 3), predict_req(1, 4), predict_req(2, 5)];
        let oracle = api::predict_batch(&eng.model, &eng.qm, &reqs, eng.window).unwrap();
        let (tx, rx) = mpsc::channel();
        for (i, r) in reqs.iter().enumerate() {
            let req = JobRequest::Predict(r.clone());
            b.submit(Job {
                key: cache_key(eng.model_hash, &req),
                req,
                index: i,
                enqueued: Instant::now(),
                deadline: None,
                reply: tx.clone(),
                poison: false,
            })
            .unwrap();
        }
        let mut scores = vec![None; reqs.len()];
        for _ in 0..reqs.len() {
            let (idx, result, _) = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            match result.unwrap() {
                Outcome::Predict(p) => scores[idx] = Some(p.score),
                Outcome::Explain(_) => panic!("predict outcome expected"),
            }
        }
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(
                s.unwrap().to_bits(),
                oracle.predictions[i].score.to_bits(),
                "queued path must be bit-identical to the offline batch"
            );
        }
        b.drain_and_stop();
    }

    fn history_req(student: u32, hist: &[(u32, bool)], target_question: u32) -> PredictRequest {
        PredictRequest {
            student,
            history: hist
                .iter()
                .map(|&(question, correct)| HistoryItem { question, correct })
                .collect(),
            target_question,
        }
    }

    #[test]
    fn warm_capability_follows_encoder_direction() {
        assert!(!engine().warm_capable(), "bidirectional encoder stays cold");
        assert!(engine_with(true).warm_capable());
    }

    #[test]
    fn warm_wave_appends_in_arrival_order_and_matches_exact_solo() {
        let eng = engine_with(true);
        // One student's live session: steps 0..6 of a growing history, all
        // landing in a single wave. Arrival order is what makes each step
        // an append onto the previous one.
        let hist: Vec<(u32, bool)> = (0..6).map(|i| ((i as u32 % 5) + 1, i % 3 != 0)).collect();
        let mut jobs = Vec::new();
        let mut rxs = Vec::new();
        let mut reqs = Vec::new();
        for n in 0..hist.len() {
            let r = history_req(9, &hist[..n], hist[n].0);
            let (j, rx) = job(&eng, JobRequest::Predict(r.clone()), n, None);
            reqs.push(r);
            jobs.push(j);
            rxs.push(rx);
        }
        process_wave(&eng, 0, jobs);
        for (n, rx) in rxs.iter().enumerate() {
            let solo =
                api::predict_batch(&eng.model, &eng.qm, &reqs[n..n + 1], eng.window).unwrap();
            match rx.recv().unwrap().1.unwrap() {
                Outcome::Predict(p) => assert_eq!(
                    p.score.to_bits(),
                    solo.predictions[0].score.to_bits(),
                    "warm step {n} must match the exact solo path"
                ),
                Outcome::Explain(_) => panic!("predict outcome expected"),
            }
        }
        assert_eq!(eng.sessions.len(), 1, "one resident session state");
        // The memo cache holds only the newest step per student: appending
        // invalidated the five stale prefix entries.
        assert_eq!(eng.cache.len(), 1);
    }

    #[test]
    fn warm_wave_isolates_per_request_errors() {
        let eng = engine_with(true);
        let good = history_req(1, &[(1, true)], 2);
        let bad = history_req(2, &[(999_999, true)], 2);
        let (jg, rxg) = job(&eng, JobRequest::Predict(good.clone()), 0, None);
        let (jb, rxb) = job(&eng, JobRequest::Predict(bad), 1, None);
        process_wave(&eng, 0, vec![jg, jb]);
        let solo = api::predict_batch(&eng.model, &eng.qm, &[good], eng.window).unwrap();
        match rxg.recv().unwrap().1.unwrap() {
            Outcome::Predict(p) => {
                assert_eq!(p.score.to_bits(), solo.predictions[0].score.to_bits())
            }
            Outcome::Explain(_) => panic!("predict outcome expected"),
        }
        assert!(matches!(
            rxb.recv().unwrap().1.unwrap_err(),
            ApiError::BadRequest(m) if m.contains("999999")
        ));
    }

    /// A `Shared` with no worker thread attached, so tests can stage the
    /// queue and drive `run_wave_guarded` deterministically.
    fn bare_shared(eng: &Arc<Engine>, max_batch: usize) -> Shared {
        Shared {
            engine: Arc::clone(eng),
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            max_queue: 64,
            max_batch,
            shard: 0,
            depth_gauge: "serve.shard.0.depth".to_string(),
            restart_counter: "serve.shard.0.restarts".to_string(),
            fleet_depth: Arc::new(AtomicUsize::new(0)),
        }
    }

    #[test]
    fn panicking_wave_fails_queued_jobs_with_500_and_keeps_serving() {
        let eng = engine();
        let shared = bare_shared(&eng, 1);

        // Stage: three jobs queued behind the wave that will panic.
        let mut queued_rxs = Vec::new();
        for i in 0..3 {
            let (j, rx) = job(
                &eng,
                JobRequest::Predict(predict_req(i, 3)),
                i as usize,
                None,
            );
            lock_recover(&shared.queue).push_back(j);
            queued_rxs.push(rx);
        }
        shared.fleet_depth.store(4, Ordering::SeqCst);
        let (mut poison, poison_rx) = job(&eng, JobRequest::Predict(predict_req(9, 3)), 0, None);
        poison.poison = true;

        run_wave_guarded(&shared, vec![poison]);

        // The in-flight job's reply sender died with the unwind: the HTTP
        // layer maps that recv error to a 500.
        assert!(
            poison_rx.recv().is_err(),
            "in-flight job's channel must be dropped by the unwind"
        );
        // Every queued job is answered with an explicit 500 — not left to
        // hang until a socket timeout.
        for rx in &queued_rxs {
            let (_, result, t) = rx.recv().unwrap();
            assert!(
                matches!(result.unwrap_err(), ApiError::Internal(m) if m.contains("panicked")),
                "queued job must fail with a worker-panic 500"
            );
            assert_eq!(t.shard, 0);
        }
        assert!(lock_recover(&shared.queue).is_empty());
        assert_eq!(shared.fleet_depth.load(Ordering::SeqCst), 1);

        // Restart semantics: the same shard serves the next wave normally.
        let (j, rx) = job(&eng, JobRequest::Predict(predict_req(1, 4)), 0, None);
        run_wave_guarded(&shared, vec![j]);
        let (_, result, _) = rx.recv().unwrap();
        assert!(
            matches!(result.unwrap(), Outcome::Predict(_)),
            "wave after a panic must be served by the restarted worker"
        );
    }

    #[test]
    fn live_batcher_survives_a_poison_wave() {
        let eng = engine();
        let b = Batcher::start(Arc::clone(&eng), 1, 64);
        let req = JobRequest::Predict(predict_req(3, 4));
        let (tx, rx) = mpsc::channel();
        b.submit(Job {
            key: cache_key(eng.model_hash, &req),
            req,
            index: 0,
            enqueued: Instant::now(),
            deadline: None,
            reply: tx,
            poison: true,
        })
        .unwrap();
        assert!(
            rx.recv_timeout(Duration::from_secs(30)).is_err(),
            "poisoned job's reply channel dies with the unwind"
        );
        // The worker thread caught the unwind and keeps draining: a fresh
        // job on the same shard succeeds.
        let (j, rx) = job(&eng, JobRequest::Predict(predict_req(4, 5)), 0, None);
        b.submit(j).unwrap();
        let (_, result, _) = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(result.is_ok(), "shard must serve requests after a panic");
        b.drain_and_stop();
    }

    #[test]
    fn fleet_routes_by_student_and_matches_offline_bitwise() {
        let eng = engine();
        let fleet = Fleet::start(Arc::clone(&eng), 4, 8, 64);
        assert_eq!(fleet.workers(), 4);
        let reqs: Vec<PredictRequest> = (0..12).map(|s| predict_req(s, 3)).collect();
        let oracle = api::predict_batch(&eng.model, &eng.qm, &reqs, eng.window).unwrap();
        let (tx, rx) = mpsc::channel();
        for (i, r) in reqs.iter().enumerate() {
            let req = JobRequest::Predict(r.clone());
            fleet
                .submit(Job {
                    key: cache_key(eng.model_hash, &req),
                    req,
                    index: i,
                    enqueued: Instant::now(),
                    deadline: None,
                    reply: tx.clone(),
                    poison: false,
                })
                .unwrap();
        }
        let mut scores = vec![None; reqs.len()];
        for _ in 0..reqs.len() {
            let (idx, result, t) = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            // The routing contract: the shard that answered is the
            // student's FNV shard.
            assert_eq!(t.shard, fleet.shard_of(reqs[idx].student));
            match result.unwrap() {
                Outcome::Predict(p) => scores[idx] = Some(p.score),
                Outcome::Explain(_) => panic!("predict outcome expected"),
            }
        }
        for (i, s) in scores.iter().enumerate() {
            assert_eq!(
                s.unwrap().to_bits(),
                oracle.predictions[i].score.to_bits(),
                "sharded path must be bit-identical to the offline batch"
            );
        }
        assert_eq!(fleet.queue_depths().len(), 4);
        fleet.drain_and_stop();
        assert!(fleet.is_draining());
    }

    #[test]
    fn shard_of_is_stable_and_consistent_across_fleet_sizes() {
        let eng = engine();
        let f2 = Fleet::start(Arc::clone(&eng), 2, 4, 16);
        let f4 = Fleet::start(Arc::clone(&eng), 4, 4, 16);
        for s in 0..256u32 {
            // Deterministic: same student always maps to the same shard.
            assert_eq!(f2.shard_of(s), f2.shard_of(s));
            assert_eq!(
                f2.shard_of(s),
                (crate::fnv1a(&s.to_le_bytes()) % 2) as usize
            );
            assert_eq!(
                f4.shard_of(s),
                (crate::fnv1a(&s.to_le_bytes()) % 4) as usize
            );
        }
        // FNV spreads students across shards rather than hotspotting one.
        let mut seen = [false; 4];
        for s in 0..256u32 {
            seen[f4.shard_of(s)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all four shards receive students");
        f2.drain_and_stop();
        f4.drain_and_stop();
    }
}
