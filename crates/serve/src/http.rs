//! Minimal std-only HTTP/1.1 plumbing for the inference service, in the
//! style of `rckt_obs::serve` but with `Content-Length` body reading so
//! `POST` endpoints work. One request per connection, `Connection:
//! close`, loopback only, no TLS.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Cap on the header block; a client exceeding it gets a 400.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Cap on request bodies; micro-batch bodies are small JSON documents.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request: method, path (query string stripped), headers
/// (names lowercased), raw body.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, looked up case-insensitively (names are
    /// stored lowercased at parse time).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Errors surfaced to the client as a 400 before any routing happens.
#[derive(Debug)]
pub enum ReadError {
    Io(std::io::Error),
    TooLarge,
    Malformed(&'static str),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::TooLarge => write!(f, "request too large"),
            ReadError::Malformed(what) => write!(f, "malformed request: {what}"),
        }
    }
}

/// Read one HTTP/1.1 request (header block + `Content-Length` body).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    // Bytes already scanned for the header terminator. Rewound by 3 on
    // every new chunk in case `\r\n\r\n` straddles the chunk boundary, so
    // a slow client trickling bytes costs O(n) total, not O(n²).
    let mut scanned = 0usize;
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf, scanned) {
            break pos;
        }
        scanned = buf.len().saturating_sub(3);
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ReadError::TooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Malformed("connection closed mid-headers")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(ReadError::Io(e)),
        }
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.lines();
    let mut first = lines.next().unwrap_or("").split_whitespace();
    let method = first
        .next()
        .ok_or(ReadError::Malformed("missing method"))?
        .to_string();
    let path = first
        .next()
        .ok_or(ReadError::Malformed("missing path"))?
        .split('?')
        .next()
        .unwrap_or("")
        .to_string();

    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                // A repeated Content-Length — even one agreeing with the
                // first — is rejected outright: it is the header a
                // request-smuggling attack equivocates on, and honoring
                // "last one wins" silently would let two parsers read two
                // different bodies from the same bytes.
                if content_length.is_some() {
                    return Err(ReadError::Malformed("duplicate Content-Length"));
                }
                content_length = Some(
                    value
                        .parse()
                        .map_err(|_| ReadError::Malformed("bad Content-Length"))?,
                );
            }
            headers.push((name, value));
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }

    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Malformed("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Find `\r\n\r\n` at or after `from`, returning its offset in `buf`.
fn find_header_end(buf: &[u8], from: usize) -> Option<usize> {
    let from = from.min(buf.len());
    buf[from..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + from)
}

/// Write a complete response and close the connection. `extra_headers`
/// lets handlers attach e.g. `Retry-After` on a 503.
pub fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    let mut headers = String::new();
    for (k, v) in extra_headers {
        headers.push_str(&format!("{k}: {v}\r\n"));
    }
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{headers}Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

/// `{"error":"..."}` with the message JSON-escaped via serde.
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\":{}}}", serde_json::to_string(msg).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            s.write_all(&raw).unwrap();
            let _ = s.shutdown(Shutdown::Write);
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side);
        let _ = client.join();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /predict?x=1 HTTP/1.1\r\nHost: l\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, b"hello world");
        assert_eq!(req.header("Host"), Some("l"));
        assert_eq!(req.header("content-length"), Some("11"));
        assert_eq!(req.header("x-request-id"), None);
    }

    #[test]
    fn header_lookup_is_case_insensitive_and_trimmed() {
        let req =
            roundtrip(b"POST /p HTTP/1.1\r\nX-Request-Id:  abc-123 \r\nContent-Length: 0\r\n\r\n")
                .unwrap();
        assert_eq!(req.header("X-REQUEST-ID"), Some("abc-123"));
        assert_eq!(req.header("x-request-id"), Some("abc-123"));
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn body_split_across_header_read_is_kept() {
        // Entire request arrives in one packet: body bytes already sit in
        // the header buffer and must not be lost.
        let req = roundtrip(b"POST /p HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_bad_content_length() {
        assert!(matches!(
            roundtrip(b"POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_duplicate_and_conflicting_content_length() {
        // Conflicting values: two parsers could disagree on where the
        // body ends (request smuggling); must be a parse error, not
        // last-one-wins.
        assert!(matches!(
            roundtrip(b"POST /p HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nabcd"),
            Err(ReadError::Malformed("duplicate Content-Length"))
        ));
        // Even agreeing duplicates are rejected.
        assert!(matches!(
            roundtrip(b"POST /p HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd"),
            Err(ReadError::Malformed("duplicate Content-Length"))
        ));
        // Case variants are the same header.
        assert!(matches!(
            roundtrip(b"POST /p HTTP/1.1\r\ncontent-length: 4\r\nCONTENT-LENGTH: 4\r\n\r\nabcd"),
            Err(ReadError::Malformed("duplicate Content-Length"))
        ));
    }

    #[test]
    fn slow_client_trickling_header_bytes_parses() {
        // One byte per write, with the terminator split across writes:
        // exercises the incremental `find_header_end` resume-from-len-3
        // path rather than the single-packet fast path.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        let raw: &[u8] = b"POST /slow HTTP/1.1\r\nContent-Length: 5\r\nX-Drip: 1\r\n\r\nhello";
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
            for b in raw {
                s.write_all(std::slice::from_ref(b)).unwrap();
                s.flush().unwrap();
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            let _ = s.shutdown(Shutdown::Write);
            s
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = read_request(&mut server_side).unwrap();
        let _ = client.join();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/slow");
        assert_eq!(req.header("x-drip"), Some("1"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn find_header_end_resumes_mid_terminator() {
        let buf = b"abc\r\n\r\nrest";
        // Scanning from any offset at or before the terminator finds it.
        for from in 0..=3 {
            assert_eq!(find_header_end(buf, from), Some(3), "from={from}");
        }
        // Scanning from past it does not.
        assert_eq!(find_header_end(buf, 4), None);
        // `from` beyond the buffer is clamped, not a panic.
        assert_eq!(find_header_end(b"ab", 10), None);
    }

    #[test]
    fn error_body_escapes() {
        assert_eq!(error_body("a\"b"), "{\"error\":\"a\\\"b\"}");
    }
}
