//! Property-based integration tests over the data → counterfactual
//! construction pipeline.

use proptest::prelude::*;
use rckt::counterfactual::{backward_quadruple, forward_intervention, joint_contexts, Retention};
use rckt_data::preprocess::{windows, Window};
use rckt_data::{Batch, Interaction, QMatrix, ResponseSeq};
use rckt_models::ResponseCat;

fn cats_strategy(max_len: usize) -> impl Strategy<Value = Vec<ResponseCat>> {
    proptest::collection::vec(
        prop_oneof![Just(ResponseCat::Correct), Just(ResponseCat::Incorrect)],
        2..max_len,
    )
}

proptest! {
    /// Forward intervention always flips exactly the chosen index; with
    /// monotonic retention everything else is retained-or-masked according
    /// to the flipped polarity.
    #[test]
    fn forward_intervention_invariants(cats in cats_strategy(20), seed in any::<u64>()) {
        let i = (seed as usize) % cats.len();
        let (fact, cf) = forward_intervention(&cats, i, Retention::Monotonic);
        prop_assert_eq!(&fact, &cats);
        prop_assert_eq!(cf[i], cats[i].flipped());
        let retained = cats[i].flipped();
        for (j, (&orig, &new)) in cats.iter().zip(&cf).enumerate() {
            if j == i { continue; }
            if orig == retained {
                prop_assert_eq!(new, orig, "retained polarity must survive");
            } else {
                prop_assert_eq!(new, ResponseCat::Masked, "opposite polarity must be masked");
            }
        }
    }

    /// The backward quadruple builds exactly two counterfactual sequences;
    /// factual contexts are unchanged and counterfactual contexts are a
    /// partition into retained + masked.
    #[test]
    fn backward_quadruple_invariants(cats in cats_strategy(20), seed in any::<u64>()) {
        let target = (seed as usize) % cats.len();
        let [f_pos, cf_neg, f_neg, cf_pos] = backward_quadruple(&cats, target, Retention::Monotonic);
        // factual contexts untouched outside the target
        for j in 0..cats.len() {
            if j == target { continue; }
            prop_assert_eq!(f_pos[j], cats[j]);
            prop_assert_eq!(f_neg[j], cats[j]);
            // counterfactuals: retained or masked, never flipped
            prop_assert!(cf_neg[j] == cats[j] || cf_neg[j] == ResponseCat::Masked);
            prop_assert!(cf_pos[j] == cats[j] || cf_pos[j] == ResponseCat::Masked);
        }
        // target assumptions
        prop_assert_eq!(f_pos[target], ResponseCat::Correct);
        prop_assert_eq!(cf_neg[target], ResponseCat::Incorrect);
        prop_assert_eq!(f_neg[target], ResponseCat::Incorrect);
        prop_assert_eq!(cf_pos[target], ResponseCat::Correct);
    }

    /// Joint contexts preserve position count and only ever mask.
    #[test]
    fn joint_contexts_only_mask(cats in cats_strategy(20)) {
        for ctx in joint_contexts(&cats) {
            prop_assert_eq!(ctx.len(), cats.len());
            for (&orig, &new) in cats.iter().zip(&ctx) {
                prop_assert!(new == orig || new == ResponseCat::Masked);
            }
        }
    }

    /// Windowing then batching preserves every response and its label.
    #[test]
    fn window_batch_roundtrip(lens in proptest::collection::vec(1usize..40, 1..6)) {
        let qm = QMatrix::new(vec![vec![0], vec![1], vec![0, 1]], 2);
        let sequences: Vec<ResponseSeq> = lens.iter().enumerate().map(|(u, &l)| ResponseSeq {
            student: u as u32,
            interactions: (0..l).map(|t| Interaction {
                question: (t % 3) as u32,
                correct: (t * 7 + u) % 3 == 0,
                timestamp: t as u64,
            }).collect(),
        }).collect();
        let ds = rckt_data::Dataset { name: "p".into(), sequences, q_matrix: qm };
        let ws = windows(&ds, 10, 1);
        let total: usize = ws.iter().map(|w| w.len).sum();
        prop_assert_eq!(total, ds.num_responses());
        if !ws.is_empty() {
            let refs: Vec<&Window> = ws.iter().collect();
            let b = Batch::from_windows(&refs, &ds.q_matrix);
            prop_assert_eq!(b.num_valid(), total);
            // labels survive the flattening
            for (k, w) in ws.iter().enumerate() {
                for t in 0..w.len {
                    let i = k * b.t_len + t;
                    prop_assert_eq!(b.correct[i] >= 0.5, w.correct[t] == 1);
                }
            }
        }
    }
}
