//! Cross-crate integration tests: data generation → preprocessing → model
//! training → evaluation, for every model family in the workspace.

use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, KFold, SyntheticSpec};
use rckt_metrics::{accuracy, auc};
use rckt_models::attn_kt::{AttnKt, AttnKtConfig, AttnVariant};
use rckt_models::bkt::Bkt;
use rckt_models::dimkt::{Dimkt, DimktConfig};
use rckt_models::dkt::{Dkt, DktConfig};
use rckt_models::ikt::Ikt;
use rckt_models::model::TrainConfig;
use rckt_models::qikt::{Qikt, QiktConfig};
use rckt_models::{evaluate, KtModel};

struct Setup {
    ds: rckt_data::Dataset,
    ws: Vec<rckt_data::Window>,
    fold: rckt_data::Fold,
}

fn setup(scale: f64) -> Setup {
    let ds = SyntheticSpec::assist12().scaled(scale).generate();
    let ws = windows(&ds, 50, 5);
    let folds = KFold::paper(5).split(ws.len());
    Setup {
        ds,
        ws,
        fold: folds[0].clone(),
    }
}

fn quick_cfg() -> TrainConfig {
    TrainConfig {
        max_epochs: 6,
        patience: 3,
        batch_size: 16,
        ..Default::default()
    }
}

/// Every SGD-trained baseline learns something above chance on simulator
/// data within a few epochs.
#[test]
fn all_neural_baselines_beat_chance() {
    let s = setup(0.25);
    let (nq, nk) = (s.ds.num_questions(), s.ds.num_concepts());
    let mut models: Vec<Box<dyn KtModel>> = vec![
        Box::new(Dkt::new(
            nq,
            nk,
            DktConfig {
                dim: 16,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(AttnKt::new(
            AttnVariant::Sakt,
            nq,
            nk,
            AttnKtConfig {
                dim: 16,
                heads: 2,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(AttnKt::new(
            AttnVariant::Akt,
            nq,
            nk,
            AttnKtConfig {
                dim: 16,
                heads: 2,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(Dimkt::new(
            nq,
            nk,
            DimktConfig {
                dim: 16,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(Qikt::new(
            nq,
            nk,
            QiktConfig {
                dim: 16,
                lr: 2e-3,
                ..Default::default()
            },
        )),
    ];
    let test = make_batches(&s.ws, &s.fold.test, &s.ds.q_matrix, 16);
    for m in &mut models {
        m.fit(
            &s.ws,
            &s.fold.train,
            &s.fold.val,
            &s.ds.q_matrix,
            &quick_cfg(),
        );
        let (a, _) = evaluate(m.as_ref(), &test);
        assert!(a > 0.53, "{} test AUC only {a:.4}", m.name());
    }
}

/// The non-neural baselines (IKT, BKT) fit in one pass and beat chance.
#[test]
fn statistical_baselines_beat_chance() {
    let s = setup(0.3);
    let test = make_batches(&s.ws, &s.fold.test, &s.ds.q_matrix, 32);
    let mut ikt = Ikt::new();
    ikt.fit(
        &s.ws,
        &s.fold.train,
        &s.fold.val,
        &s.ds.q_matrix,
        &quick_cfg(),
    );
    let (a, _) = evaluate(&ikt, &test);
    assert!(a > 0.53, "IKT AUC {a:.4}");

    let mut bkt = Bkt::new();
    bkt.fit(
        &s.ws,
        &s.fold.train,
        &s.fold.val,
        &s.ds.q_matrix,
        &quick_cfg(),
    );
    let (a, _) = evaluate(&bkt, &test);
    assert!(a > 0.52, "BKT AUC {a:.4}");
}

/// RCKT end-to-end: trains, beats chance on final-response prediction, and
/// its influence explanations reconstruct its own predictions exactly.
#[test]
fn rckt_end_to_end_with_explanations() {
    let s = setup(0.25);
    let mut model = Rckt::new(
        Backbone::Dkt,
        s.ds.num_questions(),
        s.ds.num_concepts(),
        RcktConfig {
            dim: 16,
            lr: 2e-3,
            ..Default::default()
        },
    );
    let report = model.fit(
        &s.ws,
        &s.fold.train,
        &s.fold.val,
        &s.ds.q_matrix,
        &quick_cfg(),
    );
    assert!(report.epochs_run >= 1);
    let test = make_batches(&s.ws, &s.fold.test, &s.ds.q_matrix, 16);
    let (a, _) = model.evaluate_last(&test);
    assert!(a > 0.52, "RCKT-DKT final-response AUC {a:.4}");

    // every prediction is exactly the influence-margin comparison
    for batch in &test {
        let targets: Vec<usize> = (0..batch.batch).map(|b| batch.seq_len(b) - 1).collect();
        let preds = model.predict_targets(batch, &targets);
        let recs = model.influences(batch, &targets);
        for (p, r) in preds.iter().zip(&recs) {
            assert!((p.prob - r.score).abs() < 1e-6);
            let manual =
                (r.total_correct - r.total_incorrect) / (2.0 * r.target.max(1) as f32) + 0.5;
            assert!((r.score - manual.clamp(0.0, 1.0)).abs() < 1e-5);
        }
    }
}

/// Checkpointing: save → load → identical predictions across process-like
/// boundaries (string round trip).
#[test]
fn rckt_checkpoint_roundtrip() {
    let s = setup(0.15);
    let mut model = Rckt::new(
        Backbone::Sakt,
        s.ds.num_questions(),
        s.ds.num_concepts(),
        RcktConfig {
            dim: 16,
            heads: 2,
            lr: 2e-3,
            ..Default::default()
        },
    );
    let cfg = TrainConfig {
        max_epochs: 2,
        patience: 2,
        batch_size: 16,
        ..Default::default()
    };
    model.fit(&s.ws, &s.fold.train, &s.fold.val, &s.ds.q_matrix, &cfg);
    let test = make_batches(&s.ws, &s.fold.test, &s.ds.q_matrix, 16);
    let before: Vec<f32> = test
        .iter()
        .flat_map(|b| model.predict_last(b))
        .map(|p| p.prob)
        .collect();

    let json = model.save_weights();
    let mut restored = Rckt::new(
        Backbone::Sakt,
        s.ds.num_questions(),
        s.ds.num_concepts(),
        RcktConfig {
            dim: 16,
            heads: 2,
            lr: 2e-3,
            ..Default::default()
        },
    );
    restored.load_weights(&json).unwrap();
    let after: Vec<f32> = test
        .iter()
        .flat_map(|b| restored.predict_last(b))
        .map(|p| p.prob)
        .collect();
    assert_eq!(before.len(), after.len());
    for (x, y) in before.iter().zip(&after) {
        assert!((x - y).abs() < 1e-6);
    }
}

/// The CSV loader feeds the same pipeline as the simulator.
#[test]
fn csv_to_training_pipeline() {
    // synthesize a CSV from simulator output, reload it, train briefly
    let ds = SyntheticSpec::assist09().scaled(0.1).generate();
    let mut csv = String::from("student,question,concepts,correct,timestamp\n");
    for seq in &ds.sequences {
        for it in &seq.interactions {
            let concepts: Vec<String> = ds
                .q_matrix
                .concepts_of(it.question)
                .iter()
                .map(|k| k.to_string())
                .collect();
            csv.push_str(&format!(
                "{},{},\"{}\",{},{}\n",
                seq.student,
                it.question,
                concepts.join(";"),
                it.correct as u8,
                it.timestamp
            ));
        }
    }
    let loaded = rckt_data::csv::parse_csv("fromcsv", &csv).unwrap();
    assert_eq!(loaded.num_responses(), ds.num_responses());
    let ws = windows(&loaded, 50, 5);
    assert!(!ws.is_empty());
    let idx: Vec<usize> = (0..ws.len()).collect();
    let mut model = Dkt::new(
        loaded.num_questions(),
        loaded.num_concepts(),
        DktConfig {
            dim: 16,
            ..Default::default()
        },
    );
    let n = idx.len();
    let cfg = TrainConfig {
        max_epochs: 2,
        patience: 2,
        batch_size: 16,
        ..Default::default()
    };
    model.fit(&ws, &idx[..n - 2], &idx[n - 2..], &loaded.q_matrix, &cfg);
    let test = make_batches(&ws, &idx[n - 2..], &loaded.q_matrix, 8);
    let preds = model.predict(&test[0]);
    assert!(!preds.is_empty());
    let scores: Vec<f32> = preds.iter().map(|p| p.prob).collect();
    let labels: Vec<bool> = preds.iter().map(|p| p.label).collect();
    let _ = (auc(&scores, &labels), accuracy(&scores, &labels, 0.5));
}
