//! Integration tests for the counterfactual reasoning pipeline across
//! crates: approximation quality, ablation behaviour, proficiency probes.

use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, KFold, SyntheticSpec};
use rckt_models::model::TrainConfig;
use rckt_models::KtModel;

fn trained_model(
    backbone: Backbone,
    scale: f64,
) -> (
    rckt_data::Dataset,
    Vec<rckt_data::Window>,
    rckt_data::Fold,
    Rckt,
) {
    let ds = SyntheticSpec::assist09().scaled(scale).generate();
    let ws = windows(&ds, 30, 5);
    let folds = KFold::paper(9).split(ws.len());
    let fold = folds[0].clone();
    let mut model = Rckt::new(
        backbone,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: 16,
            heads: 2,
            lr: 2e-3,
            ..Default::default()
        },
    );
    let cfg = TrainConfig {
        max_epochs: 5,
        patience: 3,
        batch_size: 16,
        ..Default::default()
    };
    model.fit(&ws, &fold.train, &fold.val, &ds.q_matrix, &cfg);
    (ds, ws, fold, model)
}

/// Backward-approximate and forward-exact inference must agree directionally
/// (positive rank correlation) — the justification for Eq. 18/21.
#[test]
fn approximation_tracks_exact_inference() {
    let (ds, ws, fold, model) = trained_model(Backbone::Dkt, 0.2);
    let test = make_batches(&ws, &fold.test, &ds.q_matrix, 16);
    let mut approx = Vec::new();
    let mut exact = Vec::new();
    for b in &test {
        approx.extend(model.predict_last(b).into_iter().map(|p| p.prob as f64));
        exact.extend(
            model
                .predict_exact_last(b)
                .into_iter()
                .map(|p| p.prob as f64),
        );
    }
    let n = approx.len() as f64;
    let (ma, me) = (
        approx.iter().sum::<f64>() / n,
        exact.iter().sum::<f64>() / n,
    );
    let cov: f64 = approx
        .iter()
        .zip(&exact)
        .map(|(a, e)| (a - ma) * (e - me))
        .sum();
    let va: f64 = approx.iter().map(|a| (a - ma) * (a - ma)).sum();
    let ve: f64 = exact.iter().map(|e| (e - me) * (e - me)).sum();
    let r = cov / (va.sqrt() * ve.sqrt()).max(1e-12);
    assert!(
        r > 0.25,
        "approximate vs exact correlation too weak: {r:.3}"
    );
}

/// The -mono ablation must actually change the counterfactual inputs (and
/// therefore the scores) relative to the full model.
#[test]
fn mono_ablation_changes_predictions() {
    let ds = SyntheticSpec::assist09().scaled(0.15).generate();
    let ws = windows(&ds, 30, 5);
    let folds = KFold::paper(1).split(ws.len());
    let fold = &folds[0];
    let cfg = TrainConfig {
        max_epochs: 3,
        patience: 3,
        batch_size: 16,
        ..Default::default()
    };

    let mut full = Rckt::new(
        Backbone::Dkt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: 16,
            lr: 2e-3,
            ..Default::default()
        },
    );
    full.fit(&ws, &fold.train, &fold.val, &ds.q_matrix, &cfg);
    // same weights, different retention: load full's weights into an
    // ablated config so the only difference is the sequence construction
    let mut ablated = Rckt::new(
        Backbone::Dkt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: 16,
            lr: 2e-3,
            ..Default::default()
        }
        .without_mono(),
    );
    ablated.load_weights(&full.save_weights()).unwrap();

    let test = make_batches(&ws, &fold.test, &ds.q_matrix, 16);
    let a: Vec<f32> = test
        .iter()
        .flat_map(|b| full.predict_last(b))
        .map(|p| p.prob)
        .collect();
    let b: Vec<f32> = test
        .iter()
        .flat_map(|b| ablated.predict_last(b))
        .map(|p| p.prob)
        .collect();
    let max_diff = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_diff > 1e-4,
        "retention ablation had no effect (max diff {max_diff})"
    );
}

/// Proficiency probes respond to evidence: a streak of correct answers on a
/// concept should not *lower* the traced proficiency trend, on average
/// across several students.
#[test]
fn proficiency_trends_follow_evidence() {
    let (ds, ws, fold, model) = trained_model(Backbone::Dkt, 0.25);
    let mut improvements = 0i32;
    let mut cases = 0i32;
    for &i in fold.test.iter().take(12) {
        let w = &ws[i];
        if w.len < 8 {
            continue;
        }
        let k = ds.q_matrix.concepts_of(w.questions[0])[0];
        let trace = model.trace_proficiency(w, &ds.q_matrix, k);
        // compare mean proficiency in the second half vs first half against
        // the student's actual second-half correctness
        let half = trace.after.len() / 2;
        let first: f32 = trace.after[..half].iter().sum::<f32>() / half as f32;
        let second: f32 =
            trace.after[half..].iter().sum::<f32>() / (trace.after.len() - half) as f32;
        let correct_rate: f32 = w.correct[half..w.len]
            .iter()
            .map(|&c| c as f32)
            .sum::<f32>()
            / (w.len - half) as f32;
        cases += 1;
        let went_up = second >= first;
        let mostly_correct = correct_rate >= 0.5;
        if went_up == mostly_correct {
            improvements += 1;
        }
    }
    assert!(cases >= 5, "not enough long test windows");
    assert!(
        improvements * 2 >= cases,
        "proficiency direction agreed with evidence only {improvements}/{cases} times"
    );
}

/// RCKT scores are invariant to batch composition (no cross-sequence
/// leakage through the 4-pass counterfactual machinery).
#[test]
fn rckt_batch_composition_invariance() {
    let (ds, ws, fold, model) = trained_model(Backbone::Sakt, 0.15);
    let take: Vec<usize> = fold.test.iter().copied().take(3).collect();
    let joint = make_batches(&ws, &take, &ds.q_matrix, 3);
    let joint_targets: Vec<usize> = (0..joint[0].batch)
        .map(|b| joint[0].seq_len(b) - 1)
        .collect();
    let joint_preds = model.predict_targets(&joint[0], &joint_targets);

    for (k, &i) in take.iter().enumerate() {
        let solo = make_batches(&ws, &[i], &ds.q_matrix, 1);
        let t = solo[0].seq_len(0) - 1;
        let solo_pred = model.predict_targets(&solo[0], &[t]);
        assert!(
            (joint_preds[k].prob - solo_pred[0].prob).abs() < 1e-5,
            "sequence {k}: {} vs {}",
            joint_preds[k].prob,
            solo_pred[0].prob
        );
    }
}

/// The prediction for a target must not depend on the target's *actual*
/// response — flipping the ground-truth label in the batch may change the
/// reported label but never the score (no label leakage).
#[test]
fn prediction_ignores_target_ground_truth() {
    let (ds, ws, fold, model) = trained_model(Backbone::Dkt, 0.15);
    let test = make_batches(&ws, &fold.test[..fold.test.len().min(3)], &ds.q_matrix, 4);
    for b in &test {
        let targets: Vec<usize> = (0..b.batch).map(|bb| b.seq_len(bb) - 1).collect();
        let before = model.predict_targets(b, &targets);
        let mut flipped = b.clone();
        for (bb, &t) in targets.iter().enumerate() {
            let i = bb * b.t_len + t;
            flipped.correct[i] = 1.0 - flipped.correct[i];
        }
        let after = model.predict_targets(&flipped, &targets);
        for (x, y) in before.iter().zip(&after) {
            assert!(
                (x.prob - y.prob).abs() < 1e-6,
                "target label leaked into the score: {} vs {}",
                x.prob,
                y.prob
            );
            assert_ne!(x.label, y.label);
        }
    }
}

/// Influence scores at earlier target positions use strictly less context:
/// scores exist and stay in (0,1) for every prefix length.
#[test]
fn per_position_targets_are_well_formed() {
    let (ds, ws, fold, model) = trained_model(Backbone::Sakt, 0.15);
    let test = make_batches(&ws, &fold.test[..fold.test.len().min(4)], &ds.q_matrix, 4);
    for b in &test {
        for t in 1..b.t_len {
            let involved: Vec<usize> = (0..b.batch)
                .filter(|&bb| b.valid[bb * b.t_len + t])
                .collect();
            if involved.is_empty() {
                continue;
            }
            let targets: Vec<usize> = (0..b.batch)
                .map(|bb| if b.valid[bb * b.t_len + t] { t } else { 1 })
                .collect();
            for (bb, p) in model.predict_targets(b, &targets).into_iter().enumerate() {
                if involved.contains(&bb) {
                    assert!(
                        (0.0..=1.0).contains(&p.prob) && p.prob.is_finite(),
                        "bad score {} at (seq {bb}, t {t})",
                        p.prob
                    );
                }
            }
        }
    }
}
