//! Tour of every model in the workspace — classic BKT, the six paper
//! baselines, and RCKT — trained briefly on one dataset and ranked by
//! held-out final-response AUC.
//!
//! ```text
//! cargo run --release --example model_zoo
//! ```

use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, Batch, KFold, SyntheticSpec};
use rckt_metrics::{accuracy, auc};
use rckt_models::attn_kt::{AttnKt, AttnKtConfig, AttnVariant};
use rckt_models::bkt::Bkt;
use rckt_models::common::eval_positions;
use rckt_models::dimkt::{Dimkt, DimktConfig};
use rckt_models::dkt::{Dkt, DktConfig};
use rckt_models::dkvmn::{Dkvmn, DkvmnConfig};
use rckt_models::ikt::Ikt;
use rckt_models::ktm::{Ktm, KtmConfig};
use rckt_models::model::TrainConfig;
use rckt_models::pfa::{Pfa, PfaConfig};
use rckt_models::qikt::{Qikt, QiktConfig};
use rckt_models::saint::{Saint, SaintConfig};
use rckt_models::KtModel;

/// Final-response predictions for any conventional model.
fn last_preds(model: &dyn KtModel, batches: &[Batch]) -> (Vec<f32>, Vec<bool>) {
    let mut s = Vec::new();
    let mut l = Vec::new();
    for b in batches {
        let lasts: Vec<usize> = (0..b.batch)
            .map(|bb| bb * b.t_len + b.seq_len(bb) - 1)
            .collect();
        for (p, i) in model.predict(b).into_iter().zip(eval_positions(b)) {
            if lasts.contains(&i) {
                s.push(p.prob);
                l.push(p.label);
            }
        }
    }
    (s, l)
}

fn main() {
    let ds = SyntheticSpec::assist09().scaled(0.6).generate();
    let ws = windows(&ds, 50, 5);
    let folds = KFold::paper(3).split(ws.len());
    let fold = &folds[0];
    let (nq, nk) = (ds.num_questions(), ds.num_concepts());
    let cfg = TrainConfig {
        max_epochs: 10,
        patience: 5,
        batch_size: 16,
        ..Default::default()
    };
    let test = make_batches(&ws, &fold.test, &ds.q_matrix, 16);

    let mut models: Vec<Box<dyn KtModel>> = vec![
        Box::new(Bkt::new()),
        Box::new(Pfa::new(PfaConfig::default())),
        Box::new(Ktm::new(KtmConfig::default())),
        Box::new(Ikt::new()),
        Box::new(Dkt::new(
            nq,
            nk,
            DktConfig {
                dim: 32,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(Dkvmn::new(
            nq,
            nk,
            DkvmnConfig {
                dim: 32,
                value_dim: 32,
                ..Default::default()
            },
        )),
        Box::new(AttnKt::new(
            AttnVariant::Sakt,
            nq,
            nk,
            AttnKtConfig {
                dim: 32,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(AttnKt::new(
            AttnVariant::Akt,
            nq,
            nk,
            AttnKtConfig {
                dim: 32,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(Dimkt::new(
            nq,
            nk,
            DimktConfig {
                dim: 32,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(Qikt::new(
            nq,
            nk,
            QiktConfig {
                dim: 32,
                lr: 2e-3,
                ..Default::default()
            },
        )),
        Box::new(Saint::new(
            nq,
            nk,
            SaintConfig {
                dim: 32,
                ..Default::default()
            },
        )),
    ];

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for m in &mut models {
        eprintln!("training {} ...", m.name());
        m.fit(&ws, &fold.train, &fold.val, &ds.q_matrix, &cfg);
        let (s, l) = last_preds(m.as_ref(), &test);
        rows.push((m.name(), auc(&s, &l), accuracy(&s, &l, 0.5)));
    }

    let mut rckt = Rckt::new(
        Backbone::Akt,
        nq,
        nk,
        RcktConfig {
            dim: 32,
            lr: 2e-3,
            ..Default::default()
        },
    );
    eprintln!("training {} ...", rckt.name());
    rckt.fit(&ws, &fold.train, &fold.val, &ds.q_matrix, &cfg);
    let (a, acc) = rckt.evaluate_last(&test);
    rows.push((rckt.name(), a, acc));

    rows.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap());
    println!(
        "\n=== model zoo on {} (final-response prediction) ===",
        ds.name
    );
    println!("{:<12}{:>8}{:>8}", "model", "AUC", "ACC");
    for (name, a, c) in rows {
        println!("{name:<12}{a:>8.4}{c:>8.4}");
    }
}
