//! Subgroup audit: does the model serve weaker students as well as
//! stronger ones? Buckets test students by their overall correct rate and
//! compares AUC/accuracy/calibration per bucket, plus a single disparity
//! number.
//!
//! ```text
//! cargo run --release --example fairness_audit
//! ```

use rckt::audit::{auc_disparity, audit_by_ability};
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, KFold, SyntheticSpec};
use rckt_models::model::TrainConfig;
use rckt_models::KtModel;

fn main() {
    let ds = SyntheticSpec::assist09().scaled(0.4).generate();
    let ws = windows(&ds, 50, 5);
    let folds = KFold::paper(21).split(ws.len());
    let fold = &folds[0];

    let mut model = Rckt::new(
        Backbone::Dkt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: 32,
            lr: 2e-3,
            ..Default::default()
        },
    );
    eprintln!("training {} ...", model.name());
    let cfg = TrainConfig {
        max_epochs: 12,
        patience: 6,
        batch_size: 16,
        ..Default::default()
    };
    model.fit(&ws, &fold.train, &fold.val, &ds.q_matrix, &cfg);

    // per-student (per-window) prediction sets at strided targets
    let test = make_batches(&ws, &fold.test, &ds.q_matrix, 8);
    let mut per_student = Vec::new();
    for b in &test {
        // group the batch's predictions back into per-sequence sets
        let preds = model.predict_stride(b, 8);
        // predict_stride walks targets time-major; regroup by re-deriving
        // the same target layout
        let mut by_seq: Vec<Vec<rckt_models::Prediction>> = vec![Vec::new(); b.batch];
        let mut cursor = 0;
        let mut layout: Vec<usize> = Vec::new();
        for t in 0..b.t_len {
            for bb in 0..b.batch {
                let len = b.seq_len(bb);
                let hit = (t % 8 == 7 && t < len)
                    || (len >= 2 && t == len - 1 && len.saturating_sub(1) % 8 != 7);
                if hit {
                    layout.push(bb);
                }
            }
        }
        for &bb in &layout {
            by_seq[bb].push(preds[cursor]);
            cursor += 1;
        }
        per_student.extend(by_seq.into_iter().filter(|v| !v.is_empty()));
    }

    println!("=== subgroup audit ({} students) ===\n", per_student.len());
    println!(
        "{:>14}{:>6}{:>8}{:>8}{:>12}",
        "correct-rate", "n", "AUC", "ACC", "calib gap"
    );
    let reports = audit_by_ability(&per_student, 4);
    for r in &reports {
        if r.n == 0 {
            continue;
        }
        println!(
            "{:>6.2}–{:<6.2}{:>6}{:>8.3}{:>8.3}{:>+12.3}",
            r.rate_lo, r.rate_hi, r.n, r.auc, r.acc, r.calibration_gap
        );
    }
    println!(
        "\nAUC disparity across groups: {:.3}",
        auc_disparity(&reports)
    );
    println!("(positive calibration gap = the model flatters that group)");
}
