//! A per-student concept-proficiency dashboard (Eq. 30): trace how a
//! student's mastery of each practiced concept evolves response by
//! response, rendered as sparkline rows.
//!
//! ```text
//! cargo run --release --example proficiency_dashboard
//! ```

use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{windows, KFold, SyntheticSpec};
use rckt_models::model::TrainConfig;
use rckt_models::KtModel;

fn spark(v: f32) -> char {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    LEVELS[((v.clamp(0.0, 1.0) * 7.999) as usize).min(7)]
}

fn main() {
    let ds = SyntheticSpec::assist12().scaled(0.3).generate();
    let ws = windows(&ds, 50, 5);
    let folds = KFold::paper(11).split(ws.len());
    let fold = &folds[0];

    let mut model = Rckt::new(
        Backbone::Dkt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: 32,
            lr: 2e-3,
            ..Default::default()
        },
    );
    eprintln!("training ...");
    let cfg = TrainConfig {
        max_epochs: 10,
        patience: 5,
        batch_size: 16,
        ..Default::default()
    };
    model.fit(&ws, &fold.train, &fold.val, &ds.q_matrix, &cfg);

    // dashboard for the longest test window
    let w = fold
        .test
        .iter()
        .map(|&i| &ws[i])
        .max_by_key(|w| w.len)
        .expect("test windows exist");
    let mut concepts: Vec<u16> = (0..w.len)
        .flat_map(|t| ds.q_matrix.concepts_of(w.questions[t]).to_vec())
        .collect();
    concepts.sort_unstable();
    concepts.dedup();

    println!(
        "=== proficiency dashboard: student {} ({} responses) ===\n",
        w.student, w.len
    );
    print!("{:<14}", "responses");
    for t in 0..w.len {
        print!("{}", if w.correct[t] == 1 { '●' } else { '○' });
    }
    println!("   (●=correct ○=incorrect)");
    for &k in concepts.iter().take(8) {
        let trace = model.trace_proficiency(w, &ds.q_matrix, k);
        let scaled = trace.min_max_scaled();
        print!("{:<14}", format!("concept {k}"));
        for &p in &scaled {
            print!("{}", spark(p));
        }
        let last = trace.after.last().copied().unwrap_or(0.5);
        println!("   final margin score {last:.3}");
    }
    println!("\nrows are min-max scaled margin trajectories (paper Fig. 5 style).");
    println!("The raw scores are the influence margins of a virtual question whose");
    println!("embedding averages every question of that concept (Eq. 30).");
}
