//! Quickstart: generate a small synthetic dataset, train RCKT for a few
//! epochs, evaluate it, and print an influence explanation for one student.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rckt::explain::{render_influence_table, ExplainContext};
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, KFold, SyntheticSpec};
use rckt_models::model::TrainConfig;
use rckt_models::KtModel;

fn main() {
    // 1. Data: an ASSIST09-like synthetic dataset (see rckt-data docs for
    //    the generative model and the CSV loader for real data).
    let ds = SyntheticSpec::assist09().scaled(0.5).generate();
    let ws = windows(&ds, 50, 5);
    let folds = KFold::paper(42).split(ws.len());
    let fold = &folds[0];
    println!(
        "dataset: {} ({} windows, {:.0}% correct)",
        ds.name,
        ws.len(),
        ds.correct_rate() * 100.0
    );

    // 2. Model: RCKT with a BiLSTM (DKT) backbone.
    let mut model = Rckt::new(
        Backbone::Dkt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: 32,
            lr: 2e-3,
            ..Default::default()
        },
    );
    println!("model: {} ({} weights)", model.name(), model.num_weights());

    // 3. Train with early stopping on validation AUC.
    let cfg = TrainConfig {
        max_epochs: 12,
        patience: 6,
        batch_size: 16,
        verbose: true,
        ..Default::default()
    };
    let report = model.fit(&ws, &fold.train, &fold.val, &ds.q_matrix, &cfg);
    println!(
        "trained {} epochs (best epoch {})",
        report.epochs_run, report.best_epoch
    );

    // 4. Evaluate on the held-out fold (final-response prediction).
    let test = make_batches(&ws, &fold.test, &ds.q_matrix, 16);
    let (auc, acc) = model.evaluate_last(&test);
    println!("test AUC {auc:.4}  ACC {acc:.4}");

    // 5. Explain one prediction: per-response influences.
    let batch = &test[0];
    let targets: Vec<usize> = (0..batch.batch).map(|b| batch.seq_len(b) - 1).collect();
    let rec = &model.influences(batch, &targets)[0];
    println!(
        "\nwhy does RCKT predict {} for this student's next answer?\n",
        if rec.predicted_correct() {
            "correct"
        } else {
            "incorrect"
        }
    );
    print!(
        "{}",
        render_influence_table(rec, &ExplainContext::default())
    );
}
