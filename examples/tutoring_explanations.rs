//! A tutoring-system scenario: after training, generate an explanation
//! report for several students — the at-risk prediction, which past
//! responses drive it, and which concepts deserve review.
//!
//! This is the workload the paper's introduction motivates: educators get
//! transparent, per-response reasons behind each prediction instead of an
//! opaque score.
//!
//! ```text
//! cargo run --release --example tutoring_explanations
//! ```

use rckt::explain::top_influences;
use rckt::{Backbone, Rckt, RcktConfig};
use rckt_data::{make_batches, windows, KFold, SyntheticSpec};
use rckt_models::model::TrainConfig;
use rckt_models::KtModel;
use std::collections::HashMap;

fn main() {
    let ds = SyntheticSpec::eedi().scaled(0.3).generate();
    let ws = windows(&ds, 50, 5);
    let folds = KFold::paper(7).split(ws.len());
    let fold = &folds[0];

    let mut model = Rckt::new(
        Backbone::Akt,
        ds.num_questions(),
        ds.num_concepts(),
        RcktConfig {
            dim: 32,
            lr: 2e-3,
            ..Default::default()
        },
    );
    eprintln!(
        "training {} on {} windows ...",
        model.name(),
        fold.train.len()
    );
    let cfg = TrainConfig {
        max_epochs: 10,
        patience: 5,
        batch_size: 16,
        ..Default::default()
    };
    model.fit(&ws, &fold.train, &fold.val, &ds.q_matrix, &cfg);

    let test = make_batches(&ws, &fold.test, &ds.q_matrix, 8);
    println!("=== tutoring explanation report ===\n");
    let mut shown = 0;
    'outer: for batch in &test {
        let targets: Vec<usize> = (0..batch.batch).map(|b| batch.seq_len(b) - 1).collect();
        let recs = model.influences(batch, &targets);
        for (b, rec) in recs.iter().enumerate() {
            if rec.influences.len() < 6 {
                continue;
            }
            let student = batch.questions[b * batch.t_len]; // window id proxy
            println!(
                "student window #{student}: predicted to answer the next question {} \
                 (score {:.2}, actual: {})",
                if rec.predicted_correct() {
                    "CORRECTLY"
                } else {
                    "INCORRECTLY"
                },
                rec.score,
                if rec.label { "correct" } else { "incorrect" }
            );
            println!("  decisive past responses:");
            for (pos, correct, delta) in top_influences(rec, 3) {
                let q = batch.questions[b * batch.t_len + pos];
                let ks = ds.q_matrix.concepts_of(q as u32);
                println!(
                    "   - response #{:>2} (question {q}, concept {:?}): {} with influence {delta:+.3}",
                    pos + 1,
                    ks,
                    if correct { "answered correctly" } else { "answered incorrectly" },
                );
            }
            // concept review suggestions: concepts whose incorrect responses
            // carry the most influence
            let mut by_concept: HashMap<u16, f32> = HashMap::new();
            for &(pos, correct, delta) in &rec.influences {
                if !correct {
                    let q = batch.questions[b * batch.t_len + pos];
                    for &k in ds.q_matrix.concepts_of(q as u32) {
                        *by_concept.entry(k).or_default() += delta;
                    }
                }
            }
            let mut ranked: Vec<(u16, f32)> = by_concept.into_iter().collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            if let Some(&(k, infl)) = ranked.first() {
                println!(
                    "  suggested review: concept {k} (accumulated incorrect-response influence {infl:.3})"
                );
            }
            println!();
            shown += 1;
            if shown >= 4 {
                break 'outer;
            }
        }
    }
    println!(
        "(each report is a transparent sum of per-response influences — Eq. 12/13 of the paper)"
    );
}
