#!/usr/bin/env bash
# Regenerate every paper table/figure into results/.
# Quick CPU settings by default; pass --full for the paper-faithful run.
set -euo pipefail
cd "$(dirname "$0")/.."
EXTRA="${@:-}"
mkdir -p results

cargo build --release -p rckt-bench

run() {
  local name="$1"; shift
  echo "== $name =="
  target/release/"$name" "$@" $EXTRA | tee "results/$name.txt"
}

run table2_stats
run table1_toy
run table4_overall
run table5_ablation
run fig4_lambda
run fig5_proficiency
run fig6_case
run table6_efficiency
run extra_analyses
run headline_check
run ablation_bidir
run diag_rckt

echo "all experiment outputs in results/"
