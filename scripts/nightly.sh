#!/usr/bin/env bash
set -u
cd /root/repo
R=target/release
$R/table4_overall --scale 0.5 --folds 2 --epochs 20 --patience 8 > results/table4.txt 2> results/table4.log; echo T4DONE >> results/progress.txt
$R/table5_ablation --scale 0.5 --folds 1 --epochs 18 --patience 7 > results/table5.txt 2> results/table5.log; echo T5DONE >> results/progress.txt
$R/fig4_lambda --scale 0.5 --folds 1 --epochs 18 --patience 7 > results/fig4.txt 2> results/fig4.log; echo F4DONE >> results/progress.txt
$R/table6_efficiency --scale 0.4 --epochs 15 --patience 6 > results/table6.txt 2> results/table6.log; echo T6DONE >> results/progress.txt
$R/fig5_proficiency --scale 0.5 --epochs 18 --patience 7 > results/fig5.txt 2> results/fig5.log; echo F5DONE >> results/progress.txt
$R/fig6_case --scale 0.5 --epochs 18 --patience 7 > results/fig6.txt 2> results/fig6.log; echo F6DONE >> results/progress.txt
$R/extra_analyses --scale 0.5 --epochs 18 --patience 7 > results/extra.txt 2> results/extra.log; echo EXDONE >> results/progress.txt
$R/table1_toy --scale 0.3 --epochs 6 > results/table1.txt 2> results/table1.log; echo T1DONE >> results/progress.txt
$R/table2_stats --scale 0.5 > results/table2.txt 2>&1; echo ALLDONE >> results/progress.txt
